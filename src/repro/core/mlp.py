"""Three-layer perceptron with feed-forward back-propagation (Sec. 3).

The paper's machine-learning engine is deliberately classical: *"The neural
network topology we have used is a three-layer perceptron, and it is
trained with the Feed-Forward Back-Propagation Network (BPN) algorithm."*
This module implements exactly that, from scratch in numpy:

- input layer → tanh hidden layer → sigmoid output layer (outputs are
  certainties/opacities in [0, 1]);
- mini-batch gradient descent on mean-squared error with momentum — the
  standard BPN-with-momentum of Rumelhart & McClelland;
- **incremental training** (:meth:`NeuralNetwork.train_increment`): the
  paper trains *"iteratively in the system's idle loop"* while the user
  keeps painting, so training must be resumable a few epochs at a time;
- **network resizing with weight transfer**
  (:meth:`NeuralNetwork.with_input_subset`): Sec. 6 lets the user drop data
  properties from the input vector, and *"the input data for the previous
  network would be transferred to the new network"*;
- input standardization, fitted once from the training set and kept fixed
  so incremental batches are consistent.

Everything is vectorized over sample batches; no per-sample Python loops.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator, spawn_generators


class TrainingSet:
    """Accumulating supervised training set (inputs → target certainties).

    The interface adds samples as the user paints (Sec. 6), so the set
    grows incrementally; the network snapshots standardization statistics
    from it the first time training runs.
    """

    def __init__(self, n_inputs: int) -> None:
        if n_inputs < 1:
            raise ValueError(f"n_inputs must be >= 1, got {n_inputs}")
        self.n_inputs = int(n_inputs)
        self._x_chunks: list[np.ndarray] = []
        self._y_chunks: list[np.ndarray] = []
        self._n = 0

    def add(self, inputs, targets) -> None:
        """Append a batch of samples.

        ``inputs`` is ``(n, n_inputs)``; ``targets`` is ``(n,)`` or
        ``(n, 1)`` with values in [0, 1].
        """
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        targets = np.asarray(targets, dtype=np.float64).reshape(len(inputs), -1)
        if inputs.shape[1] != self.n_inputs:
            raise ValueError(
                f"expected {self.n_inputs} input features, got {inputs.shape[1]}"
            )
        if targets.shape[1] != 1:
            raise ValueError("targets must be scalar per sample")
        if targets.min() < 0.0 or targets.max() > 1.0:
            raise ValueError("targets must lie in [0, 1]")
        self._x_chunks.append(inputs)
        self._y_chunks.append(targets[:, 0])
        self._n += len(inputs)

    def __len__(self) -> int:
        return self._n

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Materialize ``(X, y)``; consolidates chunks lazily."""
        if self._n == 0:
            raise ValueError("training set is empty")
        if len(self._x_chunks) > 1:
            self._x_chunks = [np.concatenate(self._x_chunks, axis=0)]
            self._y_chunks = [np.concatenate(self._y_chunks, axis=0)]
        return self._x_chunks[0], self._y_chunks[0]

    def subset_features(self, keep) -> "TrainingSet":
        """Project the stored inputs onto a feature subset (Sec. 6 transfer)."""
        keep = list(keep)
        out = TrainingSet(len(keep))
        if self._n:
            X, y = self.arrays()
            out.add(X[:, keep], y)
        return out


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Clip to keep exp() finite; gradients there are ~0 anyway.
    return 1.0 / (1.0 + np.exp(-np.clip(z, -40.0, 40.0)))


def interval_forward(w1, b1, w2, b2, lo, hi):
    """Propagate input intervals through a folded two-layer network.

    ``lo``/``hi`` are per-feature bounds, shape ``(d,)`` or batched
    ``(m, d)``; returns certified ``(cert_lo, cert_hi)`` output bounds of
    matching leading shape.  Standard interval arithmetic: an affine layer
    splits weights into positive/negative parts (positive weights carry the
    lower input bound to the lower output bound, negative weights carry the
    upper), and tanh/sigmoid are monotone so they map bounds elementwise.
    The result is *conservative*: every input in the box lands inside the
    output interval, which is what makes block pruning sound.
    """
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    if lo.shape != hi.shape:
        raise ValueError(f"lo/hi shapes disagree: {lo.shape} vs {hi.shape}")
    if np.any(hi < lo):
        raise ValueError("interval bounds must satisfy lo <= hi")
    w1p, w1n = np.maximum(w1, 0.0), np.minimum(w1, 0.0)
    z1_lo = lo @ w1p.T + hi @ w1n.T + b1
    z1_hi = hi @ w1p.T + lo @ w1n.T + b1
    a_lo, a_hi = np.tanh(z1_lo), np.tanh(z1_hi)
    w2p, w2n = np.maximum(w2[0], 0.0), np.minimum(w2[0], 0.0)
    z2_lo = a_lo @ w2p + a_hi @ w2n + b2[0]
    z2_hi = a_hi @ w2p + a_lo @ w2n + b2[0]
    return _sigmoid(z2_lo), _sigmoid(z2_hi)


class NeuralNetwork:
    """Three-layer perceptron: ``n_inputs`` → ``n_hidden`` (tanh) → 1 (sigmoid).

    Parameters
    ----------
    n_inputs:
        Input feature count (e.g. 3 for the IATF's ⟨data, cumhist, t⟩).
    n_hidden:
        Hidden-layer width.  The paper resizes the net as the user changes
        the property set; width scales classification throughput linearly.
    learning_rate, momentum:
        BPN hyper-parameters.
    seed:
        Weight-init / shuffling RNG seed (deterministic training).
    """

    def __init__(self, n_inputs: int, n_hidden: int = 16,
                 learning_rate: float = 0.2, momentum: float = 0.9, seed=0) -> None:
        if n_inputs < 1 or n_hidden < 1:
            raise ValueError("n_inputs and n_hidden must be >= 1")
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.n_inputs = int(n_inputs)
        self.n_hidden = int(n_hidden)
        self.learning_rate = float(learning_rate)
        self.momentum = float(momentum)
        self._rng = as_generator(seed)
        # Xavier-style init keeps tanh units out of saturation at start.
        limit1 = np.sqrt(6.0 / (n_inputs + n_hidden))
        self.w1 = self._rng.uniform(-limit1, limit1, size=(n_hidden, n_inputs))
        self.b1 = np.zeros(n_hidden)
        limit2 = np.sqrt(6.0 / (n_hidden + 1))
        self.w2 = self._rng.uniform(-limit2, limit2, size=(1, n_hidden))
        self.b2 = np.zeros(1)
        self._vw1 = np.zeros_like(self.w1)
        self._vb1 = np.zeros_like(self.b1)
        self._vw2 = np.zeros_like(self.w2)
        self._vb2 = np.zeros_like(self.b2)
        # Standardization statistics; fitted on first training call.
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None
        self.epochs_trained = 0

    # ------------------------------------------------------------------ #
    # Standardization
    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        """Whether standardization statistics exist (any training ran)."""
        return self._mean is not None

    def fit_scaler(self, X: np.ndarray) -> None:
        """Set input standardization from a data matrix.

        Called automatically by the first training pass.
        """
        X = np.asarray(X, dtype=np.float64)
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        self._std = np.where(std > 1e-9, std, 1.0)

    def refit_scaler(self, X: np.ndarray) -> None:
        """Update standardization to track the (growing) training set.

        The interactive workflow grows the training set over time — e.g.
        the first strokes all come from one time step, so the ``time``
        column is degenerate; freezing statistics then would push later
        steps' inputs hundreds of standard deviations out and saturate the
        hidden layer permanently (a function-preserving reparametrization
        would *preserve that saturation*, leaving the network stuck with
        vanished gradients).  Instead the statistics simply follow the
        current training set: existing weights are reinterpreted in the
        re-conditioned input space — a small perturbation when statistics
        barely moved, a fresh start for a previously-degenerate column —
        and the retained training data pulls the function back within a
        few idle-loop epochs.  Momentum is reset when statistics change
        materially so stale velocities don't act in the new space.
        """
        if self._mean is None:
            self.fit_scaler(X)
            return
        X = np.asarray(X, dtype=np.float64)
        new_mean = X.mean(axis=0)
        std = X.std(axis=0)
        new_std = np.where(std > 1e-9, std, 1.0)
        changed = not (
            np.allclose(new_mean, self._mean, rtol=0.05, atol=1e-12)
            and np.allclose(new_std, self._std, rtol=0.05)
        )
        self._mean, self._std = new_mean, new_std
        if changed:
            self._vw1[:] = 0.0
            self._vb1[:] = 0.0
            self._vw2[:] = 0.0
            self._vb2[:] = 0.0

    def _standardize(self, X: np.ndarray) -> np.ndarray:
        if self._mean is None:
            raise RuntimeError("network has no scaler yet; train first")
        return (np.asarray(X, dtype=np.float64) - self._mean) / self._std

    # ------------------------------------------------------------------ #
    # Forward / backward
    # ------------------------------------------------------------------ #
    def _forward(self, Xs: np.ndarray):
        z1 = Xs @ self.w1.T + self.b1
        a1 = np.tanh(z1)
        z2 = a1 @ self.w2.T + self.b2
        out = _sigmoid(z2)
        return a1, out

    def _backward_step(self, Xs: np.ndarray, y: np.ndarray) -> float:
        n = len(Xs)
        a1, out = self._forward(Xs)
        err = out[:, 0] - y  # (n,)
        loss = float(np.mean(err**2))
        # dL/dz2 through sigmoid
        dz2 = (2.0 / n) * err * out[:, 0] * (1.0 - out[:, 0])  # (n,)
        gw2 = dz2[None, :] @ a1  # (1, h)
        gb2 = np.array([dz2.sum()])
        da1 = dz2[:, None] * self.w2  # (n, h)
        dz1 = da1 * (1.0 - a1**2)
        gw1 = dz1.T @ Xs  # (h, d)
        gb1 = dz1.sum(axis=0)
        lr, mu = self.learning_rate, self.momentum
        self._vw2 = mu * self._vw2 - lr * gw2
        self._vb2 = mu * self._vb2 - lr * gb2
        self._vw1 = mu * self._vw1 - lr * gw1
        self._vb1 = mu * self._vb1 - lr * gb1
        self.w2 += self._vw2
        self.b2 += self._vb2
        self.w1 += self._vw1
        self.b1 += self._vb1
        return loss

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def train(self, X, y, epochs: int = 200, batch_size: int = 64,
              tol: float = 1e-5, input_dropout: float = 0.0) -> list[float]:
        """Full training run; returns the per-epoch loss history.

        Stops early when the epoch loss drops below ``tol``.  See
        :meth:`train_increment` for ``input_dropout``.
        """
        losses: list[float] = []
        for _ in range(int(epochs)):
            loss = self.train_increment(X, y, epochs=1, batch_size=batch_size,
                                        input_dropout=input_dropout)
            losses.append(loss)
            if loss < tol:
                break
        return losses

    def train_increment(self, X, y, epochs: int = 1, batch_size: int = 64,
                        input_dropout: float = 0.0) -> float:
        """Run a few epochs and return the last epoch's mean batch loss.

        This is the idle-loop entry point: the interface calls it between
        user interactions, keeping the UI responsive while training
        converges (Sec. 4.2.2).

        ``input_dropout`` zeroes each *standardized* input feature with the
        given probability per sample per batch (zero = the feature's mean,
        i.e. "uninformative").  When several inputs are redundant encodings
        of the target — the IATF's value and cumulative-histogram inputs at
        a key frame are exactly that — plain training may hang the output
        on whichever encoding the initialization favors; dropout forces
        every redundant pathway to carry the signal on its own, so the
        trained net degrades gracefully when one encoding shifts at unseen
        time steps.
        """
        if not 0.0 <= input_dropout < 1.0:
            raise ValueError(f"input_dropout must be in [0, 1), got {input_dropout}")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if X.shape[0] != y.shape[0]:
            raise ValueError(f"X and y disagree on sample count: {X.shape[0]} vs {y.shape[0]}")
        if X.shape[1] != self.n_inputs:
            raise ValueError(f"expected {self.n_inputs} features, got {X.shape[1]}")
        self.refit_scaler(X)
        Xs = self._standardize(X)
        n = len(Xs)
        batch_size = max(1, min(int(batch_size), n))
        last = float("inf")
        for _ in range(int(epochs)):
            order = self._rng.permutation(n)
            batch_losses = []
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                xb = Xs[idx]
                if input_dropout > 0.0:
                    keep = self._rng.random(xb.shape) >= input_dropout
                    xb = np.where(keep, xb, 0.0)
                batch_losses.append(self._backward_step(xb, y[idx]))
            last = float(np.mean(batch_losses))
            self.epochs_trained += 1
        return last

    def train_set(self, training_set: TrainingSet, epochs: int = 200,
                  batch_size: int = 64, tol: float = 1e-5) -> list[float]:
        """Train from a :class:`TrainingSet` (convenience)."""
        X, y = training_set.arrays()
        return self.train(X, y, epochs=epochs, batch_size=batch_size, tol=tol)

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def fused_layers(self, dtype=np.float32):
        """Layer weights with input standardization folded into layer 1.

        ``(x - mean) / std @ w1.T + b1`` is affine in ``x``, so the scaler
        can be absorbed once — ``w1' = w1 / std``, ``b1' = b1 - w1' @ mean``
        — and whole-volume inference becomes one GEMM per layer over raw
        features with no per-chunk standardization temporaries.  Returns
        ``(w1, b1, w2, b2)`` as fresh arrays of ``dtype`` (float32 by
        default: half the memory traffic of the float64 reference path).
        """
        if self._mean is None:
            raise RuntimeError("network has no scaler yet; train first")
        w1 = self.w1 / self._std
        b1 = self.b1 - w1 @ self._mean
        return (w1.astype(dtype), b1.astype(dtype),
                self.w2.astype(dtype), self.b2.astype(dtype))

    def certainty_bounds(self, lo, hi):
        """Certified output bounds for inputs inside the box ``[lo, hi]``.

        Bounds are per raw (unstandardized) feature, shape ``(d,)`` or
        batched ``(m, d)``.  Propagation runs in float64 on the folded
        weights, so the returned interval brackets the exact float64
        ``predict`` output for every point in the box — the certificate
        the block-pruning fast path relies on.
        """
        w1, b1, w2, b2 = self.fused_layers(dtype=np.float64)
        return interval_forward(w1, b1, w2, b2, lo, hi)

    def predict(self, X, chunk: int = 262144) -> np.ndarray:
        """Certainty in [0, 1] for each input row; ``(n,)`` output.

        Chunked so whole-volume classification (tens of millions of rows)
        never materializes more than ``chunk`` hidden activations at once.
        """
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != self.n_inputs:
            raise ValueError(f"expected {self.n_inputs} features, got {X.shape[1]}")
        out = np.empty(len(X), dtype=np.float64)
        for start in range(0, len(X), int(chunk)):
            stop = start + int(chunk)
            Xs = self._standardize(X[start:stop])
            _, o = self._forward(Xs)
            out[start:stop] = o[:, 0]
        return out

    def loss(self, X, y) -> float:
        """Mean-squared error on a labelled set."""
        pred = self.predict(X)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        return float(np.mean((pred - y) ** 2))

    # ------------------------------------------------------------------ #
    # Resizing (Sec. 6) and serialization
    # ------------------------------------------------------------------ #
    def with_input_subset(self, keep) -> "NeuralNetwork":
        """New network using only the input features in ``keep``.

        First-layer weight columns (and scaler statistics) for kept
        features transfer; hidden→output weights transfer unchanged.  The
        paper's interface uses this when the user drops data properties
        they consider unimportant — the transferred weights give the new,
        smaller network a warm start before retraining on the projected
        training data.
        """
        keep = list(keep)
        if not keep:
            raise ValueError("must keep at least one input feature")
        if any(not 0 <= k < self.n_inputs for k in keep):
            raise ValueError(f"keep indices must be in [0, {self.n_inputs}), got {keep}")
        if len(set(keep)) != len(keep):
            raise ValueError(f"duplicate indices in keep: {keep}")
        # The child gets an *independent* generator spawned off the parent's
        # seed sequence: passing self._rng itself would share the stream, so
        # training the child would silently advance the parent's shuffle
        # order and break determinism of any further parent training.
        net = NeuralNetwork(
            len(keep),
            n_hidden=self.n_hidden,
            learning_rate=self.learning_rate,
            momentum=self.momentum,
            seed=spawn_generators(self._rng, 1)[0],
        )
        net.w1 = self.w1[:, keep].copy()
        net.b1 = self.b1.copy()
        net.w2 = self.w2.copy()
        net.b2 = self.b2.copy()
        net._vw1 = np.zeros_like(net.w1)
        if self._mean is not None:
            net._mean = self._mean[keep].copy()
            net._std = self._std[keep].copy()
        return net

    def to_dict(self) -> dict:
        """JSON-serializable snapshot of weights and scaler."""
        return {
            "n_inputs": self.n_inputs,
            "n_hidden": self.n_hidden,
            "learning_rate": self.learning_rate,
            "momentum": self.momentum,
            "w1": self.w1.tolist(),
            "b1": self.b1.tolist(),
            "w2": self.w2.tolist(),
            "b2": self.b2.tolist(),
            "mean": None if self._mean is None else self._mean.tolist(),
            "std": None if self._std is None else self._std.tolist(),
            "epochs_trained": self.epochs_trained,
            "rng_state": self._rng.bit_generator.state,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "NeuralNetwork":
        """Inverse of :meth:`to_dict` (momentum state not preserved).

        The bit-generator state round-trips, so a save/load cycle does not
        change subsequent shuffle order — incremental training resumes
        exactly where the saved network would have continued.  (Payloads
        from before ``rng_state`` existed still load, with a fresh
        ``seed=0`` stream.)
        """
        net = cls(
            payload["n_inputs"],
            n_hidden=payload["n_hidden"],
            learning_rate=payload["learning_rate"],
            momentum=payload["momentum"],
        )
        rng_state = payload.get("rng_state")
        if rng_state is not None:
            net._rng.bit_generator.state = rng_state
        net.w1 = np.asarray(payload["w1"], dtype=np.float64)
        net.b1 = np.asarray(payload["b1"], dtype=np.float64)
        net.w2 = np.asarray(payload["w2"], dtype=np.float64)
        net.b2 = np.asarray(payload["b2"], dtype=np.float64)
        if payload["mean"] is not None:
            net._mean = np.asarray(payload["mean"], dtype=np.float64)
            net._std = np.asarray(payload["std"], dtype=np.float64)
        net.epochs_trained = int(payload.get("epochs_trained", 0))
        return net
