"""Random-number-generator plumbing.

All stochastic code in :mod:`repro` accepts a ``seed`` argument that may be
``None``, an integer, or an already-constructed
:class:`numpy.random.Generator`.  :func:`as_generator` normalizes the three
forms so call sites never construct generators ad hoc, which keeps every
experiment in the benchmark suite reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | None | np.random.Generator"


def as_generator(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an integer seed, or an existing
        generator (returned unchanged, *not* copied — callers share state
        deliberately so that a pipeline consumes one stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Used by the parallel executor so that worker tasks draw from
    non-overlapping streams regardless of scheduling order.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    root = as_generator(seed)
    seq = root.bit_generator.seed_seq if hasattr(root.bit_generator, "seed_seq") else None
    if seq is None:  # pragma: no cover - all numpy bit generators expose seed_seq
        return [np.random.default_rng(root.integers(0, 2**63)) for _ in range(n)]
    return [np.random.default_rng(child) for child in seq.spawn(n)]
