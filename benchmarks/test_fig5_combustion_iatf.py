"""Fig. 5 — DNS turbulent-combustion plane jet, vorticity magnitude.

Paper claim: the vorticity field's range changes so much over the run that
a TF specified at step 8 *"fails to capture most of the features in time
step 128"* (and vice versa), while *"with IATF … the feature of interest
can always be extracted"*.  Key frames 8/64/128, evaluation at the five
figure columns 8/36/64/92/128.

The bench times the derived-field computation (vorticity magnitude from
the velocity field) plus IATF generation for one step — the per-step cost
a combustion post-processing pipeline pays.
"""

from _helpers import combustion_keyframe_tf, combustion_truth, train_combustion_iatf

from repro.metrics import background_leakage, feature_retention

EVAL_TIMES = (8, 36, 64, 92, 128)
KEY_TIMES = (8, 64, 128)


def test_fig5_combustion_iatf(combustion, benchmark):
    iatf = train_combustion_iatf(combustion, key_times=KEY_TIMES)
    probe = combustion.at_time(64)
    benchmark(lambda: iatf.generate(probe))

    statics = {t: combustion_keyframe_tf(combustion, t) for t in KEY_TIMES}
    matrix = {}
    leak = {}
    for method in ["iatf"] + [f"static_{t}" for t in KEY_TIMES]:
        row, lrow = [], []
        for t in EVAL_TIMES:
            vol = combustion.at_time(t)
            truth = combustion_truth(combustion, t)
            if method == "iatf":
                opacity = iatf.opacity_volume(vol)
            else:
                opacity = statics[int(method.split("_")[1])].opacity_at(vol.data)
            row.append(feature_retention(opacity, truth))
            lrow.append(background_leakage(opacity, truth))
        matrix[method] = row
        leak[method] = lrow

    print("\nFig. 5 strong-vortex retention matrix:")
    header = " ".join(f"{t:>7}" for t in EVAL_TIMES)
    print(f"{'method':<12} {header}")
    for method, row in matrix.items():
        print(f"{method:<12} " + " ".join(f"{r:>7.2f}" for r in row))
    print(f"IATF leakage per step: " + " ".join(f"{l:.2f}" for l in leak["iatf"]))

    benchmark.extra_info["iatf_min_retention"] = round(min(matrix["iatf"]), 3)
    benchmark.extra_info["static_8_at_128"] = round(matrix["static_8"][-1], 3)
    benchmark.extra_info["static_128_at_8"] = round(matrix["static_128"][0], 3)

    # IATF extracts the vortices over the whole sequence…
    assert min(matrix["iatf"]) > 0.85
    assert max(leak["iatf"]) < 0.2
    # …while the early TF fails late and the late TF fails early.
    assert matrix["static_8"][-1] < 0.2
    assert matrix["static_128"][0] < 0.2
    # every static TF works at its own key frame
    for kt in KEY_TIMES:
        assert matrix[f"static_{kt}"][EVAL_TIMES.index(kt)] > 0.85
