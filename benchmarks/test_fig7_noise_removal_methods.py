"""Fig. 7 — four ways to remove tiny features from the cosmology data.

Paper claim (time step 310): a 1D TF *"cannot separate the small features
from the large-scale features"* (their values overlap); repeated smoothing
*"could remove those noise but at the same time the fine details on the
large features would be taken away"*; the learning-based method *"presents
the large-scale structures more cleanly"* while preserving detail.

Scores three axes per method: retention of large structures, suppression
of small features, and detail preservation on the large structures.  The
bench times the learning-based whole-volume classification — the dominant
cost of the method (Sec. 7: 10 s for 256³ on the paper's hardware).
"""

import numpy as np
from _helpers import sample_mask

from repro.core import DataSpaceClassifier, ShellFeatureExtractor, derive_shell_radius
from repro.metrics import detail_preservation, feature_retention, noise_suppression
from repro.transfer import TransferFunction1D
from repro.volume import iterated_smooth


def train_classifier(sequence, seed=5):
    radius = derive_shell_radius(sequence.at_time(310).mask("large"))
    clf = DataSpaceClassifier(ShellFeatureExtractor(radius=radius), seed=seed)
    for i, t in enumerate((130, 310)):
        vol = sequence.at_time(t)
        large, small = vol.mask("large"), vol.mask("small")
        clf.add_examples(
            vol,
            positive_mask=sample_mask(large, 150, seed=1 + i),
            negative_mask=(sample_mask(small, 80, seed=2 + i)
                           | sample_mask(~(large | small), 80, seed=3 + i)),
        )
    clf.train(epochs=300)
    return clf


def test_fig7_noise_removal_methods(cosmology, benchmark):
    vol = cosmology.at_time(310)
    domain = vol.value_range
    large, small = vol.mask("large"), vol.mask("small")
    clf = train_classifier(cosmology)

    certainty = benchmark(lambda: clf.classify(vol))

    tf_wide = TransferFunction1D(domain).add_box(0.35 * domain[1], domain[1], 0.8)
    tf_tight = TransferFunction1D(domain).add_box(0.75 * domain[1], domain[1], 0.8)
    blurred = iterated_smooth(vol, radius=1, iterations=4)

    rows = {
        "1d_tf": (tf_wide.opacity_at(vol.data), vol.data),
        "tightened_tf": (tf_tight.opacity_at(vol.data), vol.data),
        "repeated_blur": (tf_wide.opacity_at(blurred.data), blurred.data),
        "learning_based": (tf_wide.opacity_at(vol.data) * certainty, vol.data),
    }

    print("\nFig. 7 comparison at t=310:")
    print(f"{'method':<16} {'retain-large':>13} {'suppress-small':>15} {'detail':>8}")
    scores = {}
    for name, (opacity, field) in rows.items():
        ret = feature_retention(opacity, large, 0.5)
        sup = noise_suppression(opacity, small, 0.5)
        det = detail_preservation(field, vol.data, large)
        scores[name] = (ret, sup, det)
        print(f"{name:<16} {ret:>13.2f} {sup:>15.2f} {det:>8.2f}")
        benchmark.extra_info[name] = [round(x, 3) for x in (ret, sup, det)]

    # The figure's shape: each baseline fails one axis; learning wins all.
    assert scores["1d_tf"][1] < 0.5            # can't suppress the noise
    assert scores["tightened_tf"][0] < 0.3     # loses the large structures
    assert scores["repeated_blur"][2] < 0.9    # destroys fine detail
    ret, sup, det = scores["learning_based"]
    assert ret > 0.8 and sup > 0.8 and det > 0.95
    # combined score dominance
    combined = {k: min(v) for k, v in scores.items()}
    assert combined["learning_based"] == max(combined.values())
