"""Octree encoding of extracted feature masks — the compact representation.

Sec. 4: *"the trained neural network can direct the construction of a
compact representation of the features as needed"*, and the tracking
literature the paper builds on (Silver & Wang, ref. [22]) organizes
extracted features *"into a octree structure to reduce the amount of data
during tracking"*.

:class:`OctreeMask` losslessly encodes a boolean feature mask: the volume
is padded to a power-of-two cube and recursively subdivided; uniform
regions collapse to single leaves.  Extracted features are sparse and
spatially coherent, so node counts are tiny relative to voxel counts —
the data-reduction argument of the paper's introduction, made measurable
(:attr:`compression_ratio`).

Uniformity testing is performed bottom-up and fully vectorized (one
reshape/all-reduce per level); only the tree *assembly* recurses, visiting
exactly the nodes that end up in the tree.
"""

from __future__ import annotations

import numpy as np

_EMPTY, _FULL, _MIXED = 0, 1, 2


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p *= 2
    return p


class OctreeMask:
    """Lossless octree encoding of a 3D boolean mask.

    Build with :meth:`from_mask`; recover with :meth:`to_mask`.  The
    encoded form is a flat record list ``(level, z, y, x, state)`` for
    leaves, serializable via :meth:`to_arrays`.
    """

    def __init__(self, shape, size: int, leaves: np.ndarray) -> None:
        self.shape = tuple(int(s) for s in shape)
        if self.size_limit_exceeded(size):
            raise ValueError(f"octree supports cube edges up to 32768, got {size}")
        self.size = int(size)  # padded cube edge (power of two)
        self._leaves = leaves  # (n, 5) int16: level, z, y, x, state

    @staticmethod
    def size_limit_exceeded(size: int) -> bool:
        """int16 leaf coordinates bound the padded cube edge."""
        return int(size) > 32768

    # ------------------------------------------------------------------ #
    @classmethod
    def from_mask(cls, mask: np.ndarray) -> "OctreeMask":
        """Encode ``mask`` (any 3D shape; padded internally with empty)."""
        mask = np.asarray(mask, dtype=bool)
        if mask.ndim != 3:
            raise ValueError(f"mask must be 3D, got ndim={mask.ndim}")
        size = _next_pow2(max(mask.shape))
        padded = np.zeros((size, size, size), dtype=bool)
        padded[: mask.shape[0], : mask.shape[1], : mask.shape[2]] = mask

        # Bottom-up uniformity pyramid: levels[0] is voxel states, each
        # next level halves the resolution; state is EMPTY/FULL/MIXED.
        levels = [np.where(padded, _FULL, _EMPTY).astype(np.int8)]
        while levels[-1].shape[0] > 1:
            cur = levels[-1]
            n = cur.shape[0] // 2
            blocks = cur.reshape(n, 2, n, 2, n, 2).transpose(0, 2, 4, 1, 3, 5)
            blocks = blocks.reshape(n, n, n, 8)
            first = blocks[..., 0]
            uniform = (blocks == first[..., None]).all(axis=-1) & (first != _MIXED)
            levels.append(np.where(uniform, first, _MIXED).astype(np.int8))

        # Top-down assembly: descend only into MIXED nodes.
        leaves: list[tuple[int, int, int, int, int]] = []
        top = len(levels) - 1

        def visit(level: int, z: int, y: int, x: int) -> None:
            state = int(levels[level][z, y, x])
            if state != _MIXED or level == 0:
                leaves.append((level, z, y, x, state))
                return
            for dz in (0, 1):
                for dy in (0, 1):
                    for dx in (0, 1):
                        visit(level - 1, 2 * z + dz, 2 * y + dy, 2 * x + dx)

        visit(top, 0, 0, 0)
        return cls(mask.shape, size, np.asarray(leaves, dtype=np.int16))

    # ------------------------------------------------------------------ #
    def to_mask(self) -> np.ndarray:
        """Decode back to the original boolean mask (exact roundtrip)."""
        padded = np.zeros((self.size,) * 3, dtype=bool)
        for level, z, y, x, state in self._leaves:
            if state != _FULL:
                continue
            edge = 1 << int(level)
            z0, y0, x0 = int(z) * edge, int(y) * edge, int(x) * edge
            padded[z0 : z0 + edge, y0 : y0 + edge, x0 : x0 + edge] = True
        return padded[: self.shape[0], : self.shape[1], : self.shape[2]].copy()

    # ------------------------------------------------------------------ #
    @property
    def n_leaves(self) -> int:
        """Leaf count (the encoding's size driver)."""
        return len(self._leaves)

    @property
    def n_full_leaves(self) -> int:
        """Leaves covering feature voxels."""
        return int(np.count_nonzero(self._leaves[:, 4] == _FULL))

    @property
    def encoded_bytes(self) -> int:
        """Bytes of the serialized leaf records."""
        return self._leaves.nbytes

    @property
    def compression_ratio(self) -> float:
        """Raw mask bytes (1 byte/voxel) over encoded bytes."""
        raw = int(np.prod(self.shape))
        return raw / max(self.encoded_bytes, 1)

    def leaf_boxes(self, state: str = "full") -> list[tuple[int, int, int, int, int, int]]:
        """Boxes ``(z0, z1, y0, y1, x0, x1)`` of the leaves in one state.

        ``state`` is ``"full"`` or ``"empty"``.  Boxes are clipped to the
        unpadded mask extent and degenerate (fully padded-out) leaves are
        dropped, so iterating the returned boxes visits exactly the mask
        voxels the leaves cover.  The empty-space-skipping renderer uses
        this to enumerate the coalesced skip regions its soundness tests
        certify cell by cell.
        """
        if state not in ("full", "empty"):
            raise ValueError(f"state must be 'full' or 'empty', got {state!r}")
        want = _FULL if state == "full" else _EMPTY
        nz, ny, nx = self.shape
        boxes = []
        for level, z, y, x, leaf_state in self._leaves:
            if leaf_state != want:
                continue
            edge = 1 << int(level)
            z0, y0, x0 = int(z) * edge, int(y) * edge, int(x) * edge
            z1, y1, x1 = min(z0 + edge, nz), min(y0 + edge, ny), min(x0 + edge, nx)
            if z1 > z0 and y1 > y0 and x1 > x0:
                boxes.append((z0, z1, y0, y1, x0, x1))
        return boxes

    def feature_voxels(self) -> int:
        """Feature voxel count, computed from the leaves without decoding
        (full leaves clipped to the unpadded extent)."""
        return self._count_full_inside()

    def _count_full_inside(self) -> int:
        total = 0
        nz, ny, nx = self.shape
        for level, z, y, x, state in self._leaves:
            if state != _FULL:
                continue
            edge = 1 << int(level)
            z0, y0, x0 = int(z) * edge, int(y) * edge, int(x) * edge
            dz = max(0, min(z0 + edge, nz) - z0)
            dy = max(0, min(y0 + edge, ny) - y0)
            dx = max(0, min(x0 + edge, nx) - x0)
            total += dz * dy * dx
        return total

    # ------------------------------------------------------------------ #
    def to_arrays(self) -> dict:
        """Serializable representation."""
        return {"shape": list(self.shape), "size": self.size,
                "leaves": self._leaves.copy()}

    @classmethod
    def from_arrays(cls, payload: dict) -> "OctreeMask":
        """Inverse of :meth:`to_arrays`."""
        return cls(tuple(payload["shape"]), int(payload["size"]),
                   np.asarray(payload["leaves"], dtype=np.int16))


def encode_tracked_masks(masks) -> list[OctreeMask]:
    """Encode a tracked feature's per-step masks (the Silver & Wang
    reduce-data-during-tracking usage)."""
    return [OctreeMask.from_mask(m) for m in masks]
