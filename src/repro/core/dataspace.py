"""Data-space feature extraction (paper Sec. 4.3).

Some features — the reionization dataset's "large structures vs tiny
noise" — cannot be separated by any function of the scalar value alone, but
can by *size*.  The paper's trick: instead of measuring size explicitly
("there is generally no systematic and robust way to measure the size of a
3D feature"), give the classifier the voxel's value **plus a shell of
neighborhood samples at a fixed distance** — *"we do not use all the voxel
values in the neighborhood; only those voxels a fixed distance away from
the feature of interest are used, and this distance is data dependent and
derived according to the characteristics of the selected features so
far"* — plus position and the time step, and let the network learn the
separation per voxel.

A voxel deep inside a large structure sees high values on its shell; a
voxel in a tiny blob sees background.  With the shell samples sorted
descending (orientation invariance — filaments point in arbitrary
directions), a small perceptron learns the rule from a handful of painted
strokes.

All feature extraction is gather-based and chunked: coordinates → clipped
neighbour coordinates → flat-index gathers, so classifying a whole volume
never materializes more than one chunk of feature rows.
"""

from __future__ import annotations

import numpy as np

from repro.core.fastclassify import FastVolumeClassifier, TemporalCoherenceCache
from repro.core.mlp import NeuralNetwork, TrainingSet
from repro.obs import get_metrics
from repro.segmentation.components import feature_attributes, label_components
from repro.volume.grid import Volume

_DIRECTION_SETS = {
    "faces": np.array(
        [(1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)],
        dtype=np.float64,
    ),
    "faces+corners": np.concatenate(
        [
            np.array(
                [(1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)],
                dtype=np.float64,
            ),
            np.array(
                [(s0, s1, s2) for s0 in (-1, 1) for s1 in (-1, 1) for s2 in (-1, 1)],
                dtype=np.float64,
            )
            / np.sqrt(3.0),
        ]
    ),
}


def derive_shell_radius(selected_mask: np.ndarray, factor: float = 1.0,
                        min_radius: int = 1, max_radius: int = 8) -> int:
    """Derive the shell distance from the user's selected features.

    The radius is ``factor`` × the median *inscribed half-thickness* of the
    selected connected components (the maximum of the Euclidean distance
    transform inside each component).  That scale is the size signal: a
    shell at the selected features' own thickness stays *inside* them (all
    directions high) but reaches *outside* any feature thinner than the
    selection (shell sees background).  Bounding-box extents overestimate
    the thickness of elongated or diagonal features — a filament's box is
    huge while its body is thin — which is why the inscribed distance is
    used instead.  This implements the paper's "data dependent … derived
    according to the characteristics of the selected features so far".
    """
    from scipy import ndimage

    selected_mask = np.asarray(selected_mask, dtype=bool)
    if not selected_mask.any():
        raise ValueError("selected mask is empty; paint some voxels first")
    labels, n = label_components(selected_mask)
    dist = ndimage.distance_transform_edt(selected_mask)
    thickness = ndimage.maximum(dist, labels=labels, index=np.arange(1, n + 1))
    radius = int(round(factor * float(np.median(np.atleast_1d(thickness)))))
    return int(np.clip(radius, min_radius, max_radius))


class ShellFeatureExtractor:
    """Per-voxel feature vectors: value + shell samples (+ position, time).

    Parameters
    ----------
    radius:
        Shell distance in voxels (see :func:`derive_shell_radius`).
    directions:
        ``"faces"`` (6 samples) or ``"faces+corners"`` (14 samples).
    include_position:
        Append the normalized (z, y, x) voxel position — the paper lists
        *location* among the learnable properties.
    include_time:
        Append the time-step id *"so that the size of the tracked feature
        can be different over time"*.
    sort_shell:
        Sort each voxel's shell samples descending, making the vector
        invariant to feature orientation (a filament's two on-axis
        neighbours always land in the first slots).
    """

    def __init__(self, radius: int = 3, directions: str = "faces+corners",
                 include_position: bool = True, include_time: bool = True,
                 sort_shell: bool = True) -> None:
        if radius < 1:
            raise ValueError(f"radius must be >= 1, got {radius}")
        if directions not in _DIRECTION_SETS:
            raise ValueError(
                f"unknown direction set {directions!r}; options: {sorted(_DIRECTION_SETS)}"
            )
        self.radius = int(radius)
        self.directions_name = directions
        self._offsets = np.rint(_DIRECTION_SETS[directions] * self.radius).astype(np.int64)
        self.include_position = bool(include_position)
        self.include_time = bool(include_time)
        self.sort_shell = bool(sort_shell)

    @property
    def n_shell(self) -> int:
        """Number of shell samples per voxel."""
        return len(self._offsets)

    @property
    def offsets(self) -> np.ndarray:
        """Integer ``(n_shell, 3)`` voxel offsets of the shell samples.

        Read-only view; the fast classification path derives its padded
        strided views from these.
        """
        view = self._offsets.view()
        view.flags.writeable = False
        return view

    @property
    def n_features(self) -> int:
        """Total feature-vector length."""
        return 1 + self.n_shell + 3 * self.include_position + self.include_time

    @property
    def feature_names(self) -> list[str]:
        """Human-readable feature labels (for the Sec. 6 property UI)."""
        names = ["value"]
        names += [f"shell_{i}" for i in range(self.n_shell)]
        if self.include_position:
            names += ["pos_z", "pos_y", "pos_x"]
        if self.include_time:
            names += ["time"]
        return names

    def features_at(self, volume, coords: np.ndarray, time: float = 0.0) -> np.ndarray:
        """Feature matrix for specific voxels.

        ``coords`` is ``(n, 3)`` integer (z, y, x).  Shell neighbours are
        clamped at the volume boundary (replicate edges) — the same
        convention a streaming ghost-zone reader would produce.
        """
        data = volume.data if isinstance(volume, Volume) else np.asarray(volume, dtype=np.float32)
        coords = np.atleast_2d(np.asarray(coords, dtype=np.int64))
        if coords.shape[1] != 3:
            raise ValueError(f"coords must be (n, 3), got {coords.shape}")
        nz, ny, nx = data.shape
        if coords.min() < 0 or (coords >= np.array([nz, ny, nx])).any():
            raise IndexError("voxel coordinates out of range")
        flat = data.ravel()
        n = len(coords)
        out = np.empty((n, self.n_features), dtype=np.float64)
        center_idx = (coords[:, 0] * ny + coords[:, 1]) * nx + coords[:, 2]
        out[:, 0] = flat[center_idx]
        shell = np.empty((n, self.n_shell), dtype=np.float64)
        for k, off in enumerate(self._offsets):
            cz = np.clip(coords[:, 0] + off[0], 0, nz - 1)
            cy = np.clip(coords[:, 1] + off[1], 0, ny - 1)
            cx = np.clip(coords[:, 2] + off[2], 0, nx - 1)
            shell[:, k] = flat[(cz * ny + cy) * nx + cx]
        if self.sort_shell:
            # In-place ascending sort read through a reversed view gives
            # the descending order without the two negated temporaries of
            # the old -np.sort(-shell).
            shell.sort(axis=1)
            shell = shell[:, ::-1]
        out[:, 1 : 1 + self.n_shell] = shell
        col = 1 + self.n_shell
        if self.include_position:
            out[:, col] = coords[:, 0] / max(nz - 1, 1)
            out[:, col + 1] = coords[:, 1] / max(ny - 1, 1)
            out[:, col + 2] = coords[:, 2] / max(nx - 1, 1)
            col += 3
        if self.include_time:
            out[:, col] = float(time)
        return out

    def iter_volume_features(self, volume, time: float = 0.0, chunk: int = 1 << 18):
        """Yield ``(flat_slice, feature_matrix)`` chunks covering the volume.

        The whole-volume classification path: bounded memory regardless of
        grid size (paper Sec. 7 classifies 256³ volumes).
        """
        data = volume.data if isinstance(volume, Volume) else np.asarray(volume)
        nz, ny, nx = data.shape
        total = nz * ny * nx
        for start in range(0, total, int(chunk)):
            stop = min(start + int(chunk), total)
            flat_idx = np.arange(start, stop, dtype=np.int64)
            coords = np.stack(np.unravel_index(flat_idx, (nz, ny, nx)), axis=1)
            yield slice(start, stop), self.features_at(volume, coords, time=time)


class DataSpaceClassifier:
    """Per-voxel feature classifier: the Sec. 4.3 extraction engine.

    Wraps a :class:`ShellFeatureExtractor` and a pluggable learning engine
    (Sec. 3: perceptron by default; SVM and naive Bayes via ``engine=``);
    accumulates painted training examples across volumes/time steps,
    trains (incrementally where the engine supports it), and classifies
    whole volumes into per-voxel certainty fields.
    """

    def __init__(self, extractor: ShellFeatureExtractor | None = None,
                 hidden: int = 16, learning_rate: float = 0.3,
                 momentum: float = 0.9, seed=0, engine="mlp") -> None:
        from repro.core.engines import MLPEngine, make_engine

        self.extractor = extractor if extractor is not None else ShellFeatureExtractor()
        if isinstance(engine, str):
            if engine == "mlp":
                self.engine = MLPEngine(
                    self.extractor.n_features, hidden=hidden,
                    learning_rate=learning_rate, momentum=momentum, seed=seed,
                )
            else:
                self.engine = make_engine(engine, self.extractor.n_features, seed=seed)
        else:
            if engine.n_inputs != self.extractor.n_features:
                raise ValueError(
                    f"engine expects {engine.n_inputs} inputs but the extractor "
                    f"produces {self.extractor.n_features} features"
                )
            self.engine = engine
        self.training = TrainingSet(self.extractor.n_features)
        # Block statistics of the most recent fast-path classify() call
        # (blocks_total/blocks_pruned/cache_hits/cache_misses/pruned_blocks).
        self.last_fast_stats: dict | None = None

    @property
    def net(self) -> NeuralNetwork:
        """The underlying perceptron (MLP engine only), kept for
        introspection and the Sec. 6 resize path."""
        if not hasattr(self.engine, "net"):
            raise AttributeError(
                f"engine {type(self.engine).__name__} has no neural network"
            )
        return self.engine.net

    def add_examples(self, volume, positive_mask=None, negative_mask=None,
                     time: float | None = None) -> int:
        """Add painted voxels as training samples; returns samples added.

        ``positive_mask`` voxels get target 1.0 (feature of interest),
        ``negative_mask`` voxels 0.0 (unwanted).  ``time`` defaults to the
        volume's own step id.
        """
        if positive_mask is None and negative_mask is None:
            raise ValueError("provide at least one of positive_mask / negative_mask")
        t = float(volume.time if (time is None and isinstance(volume, Volume)) else (time or 0.0))
        added = 0
        for mask, target in ((positive_mask, 1.0), (negative_mask, 0.0)):
            if mask is None:
                continue
            mask = np.asarray(mask, dtype=bool)
            coords = np.argwhere(mask)
            if len(coords) == 0:
                continue
            feats = self.extractor.features_at(volume, coords, time=t)
            self.training.add(feats, np.full(len(feats), target))
            added += len(feats)
        return added

    def train(self, epochs: int = 300, batch_size: int = 64, tol: float = 1e-4) -> list[float]:
        """Full training pass over the accumulated examples.

        Returns a loss history for incremental engines (the MLP) or a
        single-element history for batch engines (SVM, naive Bayes).
        """
        X, y = self.training.arrays()
        with get_metrics().span("dataspace.train", samples=len(self.training),
                                epochs=int(epochs),
                                engine=type(self.engine).__name__):
            if hasattr(self.engine, "net"):
                return self.engine.net.train(X, y, epochs=epochs,
                                             batch_size=batch_size, tol=tol)
            return [self.engine.train_full(X, y)]

    def train_increment(self, epochs: int = 10, batch_size: int = 64) -> float:
        """Idle-loop training slice (Sec. 6).

        Batch engines retrain from scratch — the idle loop degenerates to
        "refit between interactions", which their training cost permits.
        """
        X, y = self.training.arrays()
        with get_metrics().span("dataspace.train_increment",
                                samples=len(self.training), epochs=int(epochs),
                                engine=type(self.engine).__name__):
            return self.engine.train_more(X, y, epochs=epochs, batch_size=batch_size)

    def supports_fast_path(self) -> tuple[bool, str]:
        """Whether the fused float32 path can classify for this setup.

        Returns ``(ok, reason)``; the reason names the first blocker
        (non-MLP engine, untrained network, or an extractor with no
        padded-view plan, e.g. the Sec. 6 feature-subset view).
        """
        if not getattr(self.engine, "supports_fast", False) or not hasattr(self.engine, "net"):
            return False, (f"engine {type(self.engine).__name__} has no neural "
                           "network to fold into a fused float32 kernel")
        if not self.engine.net.is_fitted:
            return False, ("network is untrained: no standardization "
                           "statistics to fold into the first layer")
        if not isinstance(self.extractor, (ShellFeatureExtractor,
                                           MultivariateShellExtractor)):
            return False, (f"extractor {type(self.extractor).__name__} has no "
                           "padded-view feature plan")
        return True, "ok"

    def classify(self, volume, time: float | None = None, chunk: int = 1 << 18,
                 mode: str = "exact", prune: bool = False,
                 cache: TemporalCoherenceCache | None = None,
                 block_shape=(32, 32, 32),
                 prune_threshold: float = 0.5) -> np.ndarray:
        """Per-voxel certainty field for a whole volume.

        This is the operation Sec. 7 times at 10 s for a 256³ grid; its
        cost is linear in voxels × features × hidden units.

        ``mode`` selects the implementation:

        - ``"exact"`` (default) — the float64 reference: chunked
          coordinate gathers, standardization, float64 forward pass.
        - ``"fast"`` — edge-padded strided views + fused float32 GEMMs
          (:class:`~repro.core.fastclassify.FastVolumeClassifier`); agrees
          with exact to |Δcertainty| ≤ 1e-3.  Raises when unsupported
          (see :meth:`supports_fast_path`).
        - ``"auto"`` — fast when supported, else the exact fallback.

        ``prune`` (fast path only) skips blocks whose interval-certified
        certainty upper bound stays below ``prune_threshold``; ``cache``
        (fast path only) reuses unchanged blocks across calls by content
        digest.  Block statistics land in the ``classify.*`` counters of
        :func:`repro.obs.get_metrics`.
        """
        if mode not in ("exact", "fast", "auto"):
            raise ValueError(f"unknown mode {mode!r}; expected exact/fast/auto")
        data = volume.data if isinstance(volume, Volume) else np.asarray(volume)
        t = float(volume.time if (time is None and isinstance(volume, Volume)) else (time or 0.0))
        use_fast = False
        if mode in ("fast", "auto"):
            ok, reason = self.supports_fast_path()
            if ok:
                use_fast = True
            elif mode == "fast":
                raise ValueError(f"fast classification path unavailable: {reason}")
        if (prune or cache is not None) and not use_fast:
            raise ValueError("prune/cache require the fast classification path "
                             "(mode='fast', or 'auto' with a trained MLP)")
        metrics = get_metrics()
        with metrics.span("dataspace.classify", voxels=int(data.size),
                          mode="fast" if use_fast else "exact",
                          prune=bool(prune), cached=cache is not None) as span:
            if use_fast:
                engine = FastVolumeClassifier(
                    self.extractor, self.engine.net,
                    block_shape=block_shape, chunk=chunk,
                )
                out = engine.classify(volume, time=t, prune=prune,
                                      threshold=prune_threshold, cache=cache)
                stats = engine.last_stats
                self.last_fast_stats = stats
                for key in ("blocks_total", "blocks_pruned",
                            "cache_hits", "cache_misses"):
                    metrics.counter(f"classify.{key}").inc(stats[key])
                    span.attrs[key] = stats[key]
            else:
                out = np.empty(data.size, dtype=np.float32)
                for flat_slice, feats in self.extractor.iter_volume_features(
                        volume, time=t, chunk=chunk):
                    out[flat_slice] = self.engine.predict(feats)
                out = out.reshape(data.shape)
        metrics.counter("classify.voxels").inc(int(data.size))
        return out

    def classify_slice(self, volume, axis: int, index: int, time: float | None = None) -> np.ndarray:
        """Certainty for one axis-aligned slice only — the interactive
        feedback path (classify a slice in real time, Sec. 6)."""
        data = volume.data if isinstance(volume, Volume) else np.asarray(volume)
        t = float(volume.time if (time is None and isinstance(volume, Volume)) else (time or 0.0))
        if axis not in (0, 1, 2):
            raise ValueError(f"axis must be 0, 1 or 2, got {axis}")
        shape = data.shape
        other = [a for a in range(3) if a != axis]
        grids = np.meshgrid(
            np.arange(shape[other[0]]), np.arange(shape[other[1]]), indexing="ij"
        )
        coords = np.empty((grids[0].size, 3), dtype=np.int64)
        coords[:, axis] = index
        coords[:, other[0]] = grids[0].ravel()
        coords[:, other[1]] = grids[1].ravel()
        feats = self.extractor.features_at(volume, coords, time=t)
        cert = self.engine.predict(feats)
        return cert.reshape(shape[other[0]], shape[other[1]]).astype(np.float32)

    def with_features(self, keep_names) -> "DataSpaceClassifier":
        """Sec. 6 property removal: new classifier on a feature subset.

        Weights for kept features and all accumulated training data
        transfer; the extractor is *not* rebuilt (subsetting happens at the
        network/training level), so callers keep using the same
        ``classify`` API while the network is smaller.
        """
        names = self.extractor.feature_names
        keep_idx = [names.index(n) for n in keep_names]
        clone = DataSpaceClassifier.__new__(DataSpaceClassifier)
        clone.extractor = _SubsetExtractor(self.extractor, keep_idx)
        clone.engine = self.engine.with_input_subset(keep_idx)
        clone.training = self.training.subset_features(keep_idx)
        return clone


class _SubsetExtractor:
    """Feature-subset view over a :class:`ShellFeatureExtractor`."""

    def __init__(self, base: ShellFeatureExtractor, keep_idx: list[int]) -> None:
        self._base = base
        self._keep = list(keep_idx)

    @property
    def n_features(self) -> int:
        return len(self._keep)

    @property
    def feature_names(self) -> list[str]:
        base_names = self._base.feature_names
        return [base_names[i] for i in self._keep]

    def features_at(self, volume, coords, time: float = 0.0) -> np.ndarray:
        return self._base.features_at(volume, coords, time=time)[:, self._keep]

    def iter_volume_features(self, volume, time: float = 0.0, chunk: int = 1 << 18):
        for flat_slice, feats in self._base.iter_volume_features(volume, time=time, chunk=chunk):
            yield flat_slice, feats[:, self._keep]


class MultivariateShellExtractor:
    """Shell features over several variables at once (paper Sec. 8).

    Concatenates one value+shell block per named field of a
    :class:`~repro.volume.multivariate.MultiVolume` (position and time
    appended once), so the classifier sees the *joint* signature — e.g.
    "high vorticity AND positive streamwise velocity" — without the user
    ever specifying the relationship between the variables, which is
    precisely the paper's multivariate pitch: *"the machine learning
    engine can take high-dimensional data directly but the scientists do
    not need to specify explicitly the relationship between these
    different dimensions"*.
    """

    def __init__(self, field_names, radius: int = 3, directions: str = "faces+corners",
                 include_position: bool = True, include_time: bool = True,
                 sort_shell: bool = True) -> None:
        field_names = list(field_names)
        if not field_names:
            raise ValueError("need at least one field name")
        if len(set(field_names)) != len(field_names):
            raise ValueError(f"duplicate field names: {field_names}")
        self.field_names_used = field_names
        self._block = ShellFeatureExtractor(
            radius=radius, directions=directions, include_position=False,
            include_time=False, sort_shell=sort_shell,
        )
        self.include_position = bool(include_position)
        self.include_time = bool(include_time)
        self.radius = self._block.radius

    @property
    def directions_name(self) -> str:
        """Direction-set name of the per-field shell block."""
        return self._block.directions_name

    @property
    def sort_shell(self) -> bool:
        """Whether each field's shell samples are sorted descending."""
        return self._block.sort_shell

    @property
    def offsets(self) -> np.ndarray:
        """Shell sample offsets shared by every field (read-only)."""
        return self._block.offsets

    @property
    def n_features(self) -> int:
        """Total feature-vector length across all fields."""
        per_field = 1 + self._block.n_shell
        return (len(self.field_names_used) * per_field
                + 3 * self.include_position + self.include_time)

    @property
    def feature_names(self) -> list[str]:
        """Qualified names: ``field:value``, ``field:shell_i``, pos, time."""
        names: list[str] = []
        for fname in self.field_names_used:
            names.append(f"{fname}:value")
            names += [f"{fname}:shell_{i}" for i in range(self._block.n_shell)]
        if self.include_position:
            names += ["pos_z", "pos_y", "pos_x"]
        if self.include_time:
            names += ["time"]
        return names

    def features_at(self, volume, coords, time: float = 0.0) -> np.ndarray:
        """Feature matrix for specific voxels of a :class:`MultiVolume`."""
        coords = np.atleast_2d(np.asarray(coords, dtype=np.int64))
        blocks = []
        for fname in self.field_names_used:
            field = volume.field(fname)
            blocks.append(self._block.features_at(field, coords, time=0.0))
        out_parts = blocks
        nz, ny, nx = volume.shape
        extras = []
        if self.include_position:
            pos = np.empty((len(coords), 3), dtype=np.float64)
            pos[:, 0] = coords[:, 0] / max(nz - 1, 1)
            pos[:, 1] = coords[:, 1] / max(ny - 1, 1)
            pos[:, 2] = coords[:, 2] / max(nx - 1, 1)
            extras.append(pos)
        if self.include_time:
            extras.append(np.full((len(coords), 1), float(time)))
        return np.concatenate(out_parts + extras, axis=1)

    def iter_volume_features(self, volume, time: float = 0.0, chunk: int = 1 << 18):
        """Chunked whole-volume feature iteration (classifier protocol)."""
        nz, ny, nx = volume.shape
        total = nz * ny * nx
        for start in range(0, total, int(chunk)):
            stop = min(start + int(chunk), total)
            flat_idx = np.arange(start, stop, dtype=np.int64)
            coords = np.stack(np.unravel_index(flat_idx, (nz, ny, nx)), axis=1)
            yield slice(start, stop), self.features_at(volume, coords, time=time)
