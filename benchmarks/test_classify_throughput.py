"""Whole-volume classification throughput: gather vs the fast path.

The Sec. 4.3 extraction applies the trained network to every voxel of
every step, which the paper runs on a PC cluster (Sec. 8) because the
per-voxel cost dominates the pipeline.  This benchmark measures the
single-host half of that story on one 96^3 cosmology step:

- ``gather``      — the reference float64 path (chunked ``features_at``);
- ``fused``       — edge-padded strided views + fused float32 inference;
- ``fused+prune`` — interval-certified block skipping on top of fused;
- ``fused+cache`` — warm temporal-coherence brick cache (replayed step);
- ``shared cold``/``shared warm`` — the cross-process shared cache
  backend (:mod:`repro.cache.shared`): a cold run populating the
  on-disk store, then a replay through an empty memory tier — the path
  a fresh worker process takes against a store another worker warmed.

The fused path must clear 3x over gather (the acceptance bar; measured
~8x at 96^3 on the development host).  Results land in
``BENCH_classify.json`` — ``benchmarks/check_perf_regression.py``
compares its machine-relative speedups against the committed baseline in
CI.  The per-shell RGBA sampler fusion of :mod:`repro.render.raycast` is
timed here too (before/after), since it rides the same PR.
"""

import json
import os
import tempfile
from pathlib import Path

import numpy as np
from _helpers import sample_mask
from scipy import ndimage

from repro.cache import SharedArrayCache
from repro.core import (
    DataSpaceClassifier,
    ShellFeatureExtractor,
    TemporalCoherenceCache,
)
from repro.data import make_cosmology_sequence
from repro.render.raycast import _sample_channels
from repro.utils.timing import Timer

GRID = (96, 96, 96)


def _write_bench(name: str, payload: dict) -> Path:
    """Drop a ``BENCH_<name>.json`` next to the pytest cwd (CI artifact)."""
    out = Path(os.environ.get("REPRO_BENCH_DIR", ".")) / f"BENCH_{name}.json"
    out.write_text(json.dumps(payload, indent=2))
    return out


def build_workload():
    sequence = make_cosmology_sequence(shape=GRID, times=[130], seed=23)
    clf = DataSpaceClassifier(ShellFeatureExtractor(radius=2), seed=5)
    vol = sequence.at_time(130)
    large, small = vol.mask("large"), vol.mask("small")
    clf.add_examples(
        vol,
        positive_mask=sample_mask(large, 150, seed=1),
        negative_mask=(sample_mask(small, 80, seed=2)
                       | sample_mask(~(large | small), 80, seed=3)),
    )
    clf.train(epochs=150)
    return clf, vol


def _time_rgba_sampler(rng):
    """Before/after for the fused per-shell RGBA gather (same PR)."""
    stack = rng.random((64, 64, 64, 4), dtype=np.float64).astype(np.float32)
    channels = [np.ascontiguousarray(stack[..., c]) for c in range(4)]
    coords = rng.uniform(0.0, 63.0, size=(160 * 160, 3))

    def unfused():
        return [ndimage.map_coordinates(c, coords.T, order=1, mode="constant",
                                        cval=0.0, prefilter=False)
                for c in channels]

    unfused()  # warm
    _sample_channels(stack, coords)
    rounds = 5
    with Timer() as t_old:
        for _ in range(rounds):
            unfused()
    with Timer() as t_new:
        for _ in range(rounds):
            _sample_channels(stack, coords)
    return t_old.elapsed / rounds, t_new.elapsed / rounds


def test_classify_throughput(benchmark):
    clf, vol = build_workload()
    n_vox = int(vol.data.size)

    with Timer() as t_gather:
        exact = clf.classify(vol, mode="exact")
    with Timer() as t_fused:
        fused = clf.classify(vol, mode="fast")
    # 12^3 blocks: tight enough intervals that the certifier actually
    # skips background blocks on this workload (32^3 bounds are too wide
    # — cosmology blobs land in nearly every 32^3 block).
    with Timer() as t_prune:
        pruned = clf.classify(vol, mode="fast", prune=True,
                              block_shape=(12, 12, 12))
    pruned_blocks = int(clf.last_fast_stats["blocks_pruned"])
    blocks_total = int(clf.last_fast_stats["blocks_total"])
    cache = TemporalCoherenceCache()
    clf.classify(vol, mode="fast", cache=cache)  # warm the brick cache
    with Timer() as t_cache:
        cached = clf.classify(vol, mode="fast", cache=cache)
    assert cache.hits > 0

    # Shared on-disk cache: a cold run populates the store, then a cache
    # with an *empty* memory tier over the same store replays it — the
    # exact path a fresh worker process takes against a warm store.
    with tempfile.TemporaryDirectory() as tmp:
        store = SharedArrayCache(Path(tmp) / "cache")
        cold_cache = TemporalCoherenceCache(store=store)
        with Timer() as t_shared_cold:
            shared_cold = clf.classify(vol, mode="fast", cache=cold_cache)
        warm_cache = cold_cache.worker_clone()  # empty L1, same store
        with Timer() as t_shared_warm:
            shared_warm = clf.classify(vol, mode="fast", cache=warm_cache)
        assert warm_cache.hits > 0 and warm_cache.misses == 0
    assert np.array_equal(shared_cold, fused)
    assert np.array_equal(shared_warm, fused)

    # Equivalence sanity (the exhaustive version lives in
    # tests/test_fastclassify.py): fused tracks the float64 reference,
    # pruning preserves the 0.5 decision mask, a warm cache replays the
    # fast path bit-for-bit.
    assert float(np.abs(fused - exact).max()) <= 1e-3
    assert ((pruned > 0.5) == (exact > 0.5)).all()
    assert np.array_equal(cached, fused)

    benchmark.pedantic(lambda: clf.classify(vol, mode="fast"),
                       rounds=3, iterations=1)

    timings = {
        "gather": t_gather.elapsed,
        "fused": t_fused.elapsed,
        "fused+prune": t_prune.elapsed,
        "fused+cache": t_cache.elapsed,
        "shared cold": t_shared_cold.elapsed,
        "shared warm": t_shared_warm.elapsed,
    }
    print(f"\nWhole-volume classification, {GRID[0]}^3 = {n_vox} voxels:")
    print(f"{'path':>12} {'seconds':>9} {'Mvox/s':>8} {'speedup':>8}")
    for path, secs in timings.items():
        print(f"{path:>12} {secs:>9.3f} {n_vox / secs / 1e6:>8.2f} "
              f"{timings['gather'] / secs:>8.2f}x")
        benchmark.extra_info[path.replace("+", "_")] = round(secs, 3)
    print(f"blocks pruned: {pruned_blocks}/{blocks_total} (12^3 blocks), "
          f"cache hits on replay: {cache.hits}")

    sampler_old, sampler_new = _time_rgba_sampler(np.random.default_rng(17))
    print(f"RGBA per-shell sampler (25600 rays, 4 channels): "
          f"4x map_coordinates {sampler_old * 1e3:.1f} ms -> "
          f"fused gather {sampler_new * 1e3:.1f} ms "
          f"({sampler_old / sampler_new:.2f}x)")

    _write_bench("classify", {
        "grid": f"{GRID[0]}^3",
        "voxels": n_vox,
        "seconds": timings,
        "vox_per_s": {k: n_vox / v for k, v in timings.items()},
        "speedup_fused_vs_gather": timings["gather"] / timings["fused"],
        "speedup_prune_vs_gather": timings["gather"] / timings["fused+prune"],
        "speedup_cache_vs_gather": timings["gather"] / timings["fused+cache"],
        "speedup_shared_warm_replay": timings["gather"] / timings["shared warm"],
        "blocks_pruned": pruned_blocks,
        "blocks_total": blocks_total,
        "cache_hits_on_replay": int(cache.hits),
        "rgba_sampler": {
            "seconds_unfused": sampler_old,
            "seconds_fused": sampler_new,
            "speedup_fused_sampler": sampler_old / sampler_new,
        },
    })

    # The acceptance bars: fused inference clears 3x over the gather
    # path, and a warm shared-store replay clears 10x (it only reads
    # bricks back from disk — no inference at all).
    assert timings["gather"] / timings["fused"] >= 3.0
    assert timings["gather"] / timings["shared warm"] >= 10.0
