"""Tests for repro.volume.compression: quantization + DEFLATE."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.volume import Volume
from repro.volume.compression import CompressedVolume, compress_volume


def smooth_volume(shape=(24, 24, 24), seed=0):
    from repro.data.fields import smooth_noise

    return smooth_noise(shape, seed=seed, sigma=2.0) * 10.0 - 3.0


class TestRoundtrip:
    @pytest.mark.parametrize("bits", [8, 16])
    @pytest.mark.parametrize("delta", [True, False])
    def test_error_bound_respected(self, bits, delta):
        data = smooth_volume()
        comp = compress_volume(data, bits=bits, delta=delta)
        back = comp.decompress()
        err = np.abs(back.data.astype(np.float64) - data).max()
        assert err <= comp.max_abs_error * 1.001 + 1e-6

    def test_16bit_tighter_than_8bit(self):
        data = smooth_volume()
        e8 = compress_volume(data, bits=8).max_abs_error
        e16 = compress_volume(data, bits=16).max_abs_error
        assert e16 < e8 / 100

    def test_constant_volume(self):
        comp = compress_volume(np.full((8, 8, 8), 3.5, dtype=np.float32))
        back = comp.decompress()
        assert np.allclose(back.data, 3.5)
        assert comp.max_abs_error == 0.0

    def test_metadata_carried(self):
        vol = Volume(smooth_volume(), time=42, name="argon")
        back = compress_volume(vol).decompress()
        assert back.time == 42
        assert back.name == "argon"

    @given(seed=st.integers(0, 200), bits=st.sampled_from([8, 16]))
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_property(self, seed, bits):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(6, 7, 8)).astype(np.float32)
        comp = compress_volume(data, bits=bits)
        back = comp.decompress()
        assert np.abs(back.data - data).max() <= comp.max_abs_error * 1.001 + 1e-6


class TestCompressionRatio:
    def test_smooth_field_compresses_well(self):
        data = smooth_volume(shape=(32, 32, 32))
        comp = compress_volume(data, bits=8, delta=True)
        # 4x from quantization alone, plus entropy-coding gains on top
        assert comp.compression_ratio > 5.0

    def test_delta_helps_on_smooth_fields(self):
        data = smooth_volume(shape=(32, 32, 32))
        with_delta = compress_volume(data, bits=8, delta=True).compressed_bytes
        without = compress_volume(data, bits=8, delta=False).compressed_bytes
        assert with_delta < without

    def test_noise_barely_compresses(self):
        rng = np.random.default_rng(0)
        noise = rng.random((16, 16, 16)).astype(np.float32)
        comp = compress_volume(noise, bits=8, delta=False)
        assert comp.compression_ratio < 6.0  # ~4x quantization, little more

    def test_byte_accounting(self):
        data = smooth_volume()
        comp = compress_volume(data)
        assert comp.raw_bytes == data.size * 4
        assert comp.compressed_bytes == len(comp.payload)


class TestValidation:
    def test_bits_validated(self):
        with pytest.raises(ValueError):
            compress_volume(np.zeros((2, 2, 2)), bits=12)

    def test_level_validated(self):
        with pytest.raises(ValueError):
            compress_volume(np.zeros((2, 2, 2)), level=0)

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            compress_volume(np.zeros((4, 4)))
