"""Derived fields: gradients and vorticity.

Two consumers in the reproduction need derivatives:

- The renderer's Phong shading uses the scalar gradient as a surface normal
  (paper Sec. 7, "rendered with shading").
- The Fig. 5 combustion experiment visualizes *vorticity magnitude*, which
  we derive from the synthetic jet's velocity field exactly as a simulation
  post-processor would: ω = ∇×u, |ω|.

All stencils are second-order central differences in the interior with
one-sided differences at boundaries (``numpy.gradient`` semantics), fully
vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.volume.grid import Volume


def _as_data(volume) -> np.ndarray:
    return volume.data if isinstance(volume, Volume) else np.asarray(volume)


def gradient(volume, spacing: float = 1.0) -> np.ndarray:
    """Central-difference gradient of a scalar volume.

    Returns an array of shape ``(3, nz, ny, nx)`` holding ``(d/dz, d/dy,
    d/dx)`` — same axis order as the volume indexing convention.
    """
    data = _as_data(volume)
    if data.ndim != 3:
        raise ValueError(f"expected 3D scalar volume, got ndim={data.ndim}")
    gz, gy, gx = np.gradient(data.astype(np.float32, copy=False), spacing)
    return np.stack([gz, gy, gx], axis=0)


def gradient_magnitude(volume, spacing: float = 1.0) -> np.ndarray:
    """Euclidean norm of the scalar gradient, shape ``(nz, ny, nx)``."""
    g = gradient(volume, spacing=spacing)
    return np.sqrt(np.einsum("cijk,cijk->ijk", g, g, dtype=np.float64)).astype(np.float32)


def vorticity(velocity: np.ndarray, spacing: float = 1.0) -> np.ndarray:
    """Curl of a velocity field.

    Parameters
    ----------
    velocity:
        Array of shape ``(3, nz, ny, nx)`` with components ``(uz, uy, ux)``
        matching the grid axis order.
    spacing:
        Uniform grid spacing.

    Returns
    -------
    Array of shape ``(3, nz, ny, nx)``: ``(ωz, ωy, ωx)`` where
    ω = ∇ × u with x, y, z the physical axes (axis 2, 1, 0 of the grid).
    """
    velocity = np.asarray(velocity)
    if velocity.ndim != 4 or velocity.shape[0] != 3:
        raise ValueError(f"velocity must have shape (3, nz, ny, nx), got {velocity.shape}")
    uz, uy, ux = velocity[0], velocity[1], velocity[2]
    # np.gradient over a 3D array returns derivatives along (z, y, x).
    duz_dz, duz_dy, duz_dx = np.gradient(uz, spacing)
    duy_dz, duy_dy, duy_dx = np.gradient(uy, spacing)
    dux_dz, dux_dy, dux_dx = np.gradient(ux, spacing)
    wz = duy_dx - dux_dy
    wy = dux_dz - duz_dx
    wx = duz_dy - duy_dz
    return np.stack([wz, wy, wx], axis=0).astype(np.float32)


def vorticity_magnitude(velocity: np.ndarray, spacing: float = 1.0) -> np.ndarray:
    """|∇×u| of a velocity field, shape ``(nz, ny, nx)``.

    This is the scalar the Fig. 5 DNS-combustion experiment renders.
    """
    w = vorticity(velocity, spacing=spacing)
    return np.sqrt(np.einsum("cijk,cijk->ijk", w, w, dtype=np.float64)).astype(np.float32)
