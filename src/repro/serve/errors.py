"""Typed request failures the server maps onto HTTP status codes.

Handlers (which run on the compute dispatcher thread) raise these; the
event-loop side catches them and writes the matching response, so the
status policy lives in one place and compute code never touches sockets.
"""

from __future__ import annotations


class ServeError(Exception):
    """Base class: a request that cannot be served as asked."""

    status = 500
    reason = "Internal Server Error"


class BadRequest(ServeError):
    """The request body is malformed or names invalid parameters."""

    status = 400
    reason = "Bad Request"


class NotFound(ServeError):
    """The named sequence, frame, or route does not exist."""

    status = 404
    reason = "Not Found"
