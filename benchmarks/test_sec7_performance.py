"""Sec. 7 — the paper's performance numbers, reproduced in software.

Paper (GeForce 6800 GT + Pentium 4 2.8 GHz):

- plain DVR of a 256³ volume to a 512² window, shaded, with the adaptive
  transfer function recalculated every frame: **6 fps**;
- tracked-feature (multi-pass highlight) rendering: **4 fps**;
- data-space classification of a 256³ volume: **10 s**;
- IATF regeneration per step: sub-second ("can be done in sub-seconds").

Our renderer is vectorized numpy on a CPU, not fragment programs on a GPU,
so absolute fps differ; the *shape* that must hold (and is asserted):

- per-frame IATF regeneration is a negligible fraction of a frame;
- the tracked/highlight pass costs more than the plain pass (paper: 6→4
  fps, a 1.5× ratio) but less than 4× it;
- whole-volume classification is orders of magnitude slower than IATF
  generation, and its per-voxel cost extrapolates 256³ to the same order
  of magnitude as the paper's 10 s.

Measured at a reduced scale (64³ volume, 128² window) with the 256³/512²
extrapolation printed alongside the paper's numbers.
"""

import numpy as np
import pytest

from _helpers import argon_keyframe_tf, sample_mask, train_argon_iatf

from repro.core import DataSpaceClassifier, ShellFeatureExtractor
from repro.data import make_argon_sequence, make_cosmology_sequence
from repro.render import Camera, render_tracked, render_volume
from repro.utils.timing import Timer

SHAPE = (64, 64, 64)
WINDOW = 128


@pytest.fixture(scope="module")
def perf_sequence():
    return make_argon_sequence(shape=SHAPE, times=[195, 225, 255], seed=7)


@pytest.fixture(scope="module")
def perf_iatf(perf_sequence):
    return train_argon_iatf(perf_sequence, key_times=(195, 255))


def test_sec7_render_with_per_frame_iatf(perf_sequence, perf_iatf, benchmark):
    """Plain shaded DVR with the adaptive TF recomputed every frame."""
    vol = perf_sequence.at_time(225)
    camera = Camera(width=WINDOW, height=WINDOW)

    def frame():
        tf = perf_iatf.generate(vol)  # recalculated every frame, as in Sec. 7
        return render_volume(vol, tf, camera=camera, shading=True)

    image = benchmark.pedantic(frame, rounds=3, iterations=1)
    assert image.coverage() > 0.05
    fps = 1.0 / benchmark.stats["mean"]
    print(f"\nSec. 7 plain render: {fps:.2f} fps at {SHAPE} -> {WINDOW}^2 "
          f"(paper: 6 fps at 256^3 -> 512^2 on GPU)")
    benchmark.extra_info["fps"] = round(fps, 2)
    benchmark.extra_info["paper_fps"] = 6


def test_sec7_tracked_render(perf_sequence, perf_iatf, benchmark):
    """Multi-pass tracked-feature highlight rendering (paper: 4 fps)."""
    vol = perf_sequence.at_time(225)
    tracked = vol.mask("ring")
    context = argon_keyframe_tf(perf_sequence, 225)
    camera = Camera(width=WINDOW, height=WINDOW)

    adaptive_tf = perf_iatf.generate(vol)
    image = benchmark.pedantic(
        lambda: render_tracked(vol, tracked, context, adaptive_tf, camera=camera),
        rounds=3, iterations=1,
    )
    assert image.coverage() > 0.01
    fps = 1.0 / benchmark.stats["mean"]
    print(f"\nSec. 7 tracked render: {fps:.2f} fps (paper: 4 fps)")
    benchmark.extra_info["fps"] = round(fps, 2)
    benchmark.extra_info["paper_fps"] = 4

    # ratio check vs the plain pass, measured fresh to compare apples:
    with Timer() as t_plain:
        render_volume(vol, adaptive_tf, camera=camera, shading=True)
    with Timer() as t_tracked:
        render_tracked(vol, tracked, context, adaptive_tf, camera=camera)
    ratio = t_tracked.elapsed / t_plain.elapsed
    print(f"tracked/plain cost ratio: {ratio:.2f} (paper: 6/4 = 1.5)")
    benchmark.extra_info["tracked_over_plain"] = round(ratio, 2)
    assert 0.8 < ratio < 4.0


def test_sec7_iatf_generation_subsecond(perf_sequence, perf_iatf, benchmark):
    """Per-step IATF regeneration must be sub-second (Sec. 5: "can be done
    in sub-seconds"), i.e. negligible against a frame."""
    vol = perf_sequence.at_time(225)
    benchmark(lambda: perf_iatf.generate(vol))
    mean = benchmark.stats["mean"]
    print(f"\nSec. 7 IATF generation: {mean * 1e3:.2f} ms per step (paper: sub-second)")
    benchmark.extra_info["seconds"] = round(mean, 5)
    assert mean < 1.0


def test_sec7_classification_time(benchmark):
    """Whole-volume data-space classification (paper: 10 s for 256³)."""
    sequence = make_cosmology_sequence(shape=SHAPE, times=[130, 310], seed=23)
    clf = DataSpaceClassifier(ShellFeatureExtractor(radius=2), seed=5)
    for i, t in enumerate((130, 310)):
        vol = sequence.at_time(t)
        large, small = vol.mask("large"), vol.mask("small")
        clf.add_examples(
            vol,
            positive_mask=sample_mask(large, 150, seed=1 + i),
            negative_mask=(sample_mask(small, 80, seed=2 + i)
                           | sample_mask(~(large | small), 80, seed=3 + i)),
        )
    clf.train(epochs=200)

    vol = sequence.at_time(310)
    cert = benchmark.pedantic(lambda: clf.classify(vol), rounds=3, iterations=1)
    assert cert.shape == vol.shape

    mean = benchmark.stats["mean"]
    per_voxel = mean / np.prod(SHAPE)
    extrapolated_256 = per_voxel * 256**3
    print(f"\nSec. 7 classification: {mean:.2f} s at {SHAPE} "
          f"-> extrapolated {extrapolated_256:.1f} s at 256^3 (paper: 10 s)")
    benchmark.extra_info["seconds_64"] = round(mean, 3)
    benchmark.extra_info["extrapolated_256"] = round(extrapolated_256, 1)
    # same order of magnitude as the paper's CPU-bound implementation
    assert 1.0 < extrapolated_256 < 200.0
