"""End-to-end orchestration over sequences (Sec. 4.2.3 / Sec. 8).

The trained artifacts (an IATF or a data-space classifier) are small and
picklable, so a run over hundreds of steps fans out per time step:
*"the processing of each time step is completely independent of other time
steps"*.  These helpers wire the core engines to the
:mod:`repro.parallel.executor` task farm and the renderer.

Volume payload transport is selectable: ``transport="pickle"`` ships the
whole ``Volume`` through the IPC pipe per task (simple, works
everywhere); ``transport="shm"`` parks each step's voxels in
:mod:`multiprocessing.shared_memory` once and ships only a tiny handle
(:mod:`repro.parallel.shm`); ``"auto"`` picks shm whenever the map will
actually fan out to processes.  Retry/timeout/degraded-mode behaviour
forwards to the task farm (``retry=`` / ``on_error=``) — with
``on_error="skip"`` a failed step's slot holds ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.cache.shared import SharedArrayCache
from repro.core.dataspace import (
    DataSpaceClassifier,
    ShellFeatureExtractor,
    derive_shell_radius,
)
from repro.core.iatf import AdaptiveTransferFunction
from repro.obs import get_metrics
from repro.parallel.bricking import content_digest
from repro.parallel.executor import TaskError, map_timesteps, will_use_processes
from repro.parallel.pool import WorkerPool
from repro.parallel.shm import HAS_SHARED_MEMORY, OpenSharedVolume, SharedVolumeArena
from repro.render.camera import Camera
from repro.render.fastcast import render_volume_fast
from repro.render.image import Image
from repro.render.raycast import render_volume
from repro.transfer.tf1d import TransferFunction1D
from repro.volume.grid import Volume, VolumeSequence

_TRANSPORTS = ("auto", "pickle", "shm")


def _use_shm(transport: str, backend: str, workers, n_items: int) -> bool:
    if transport not in _TRANSPORTS:
        raise ValueError(f"unknown transport {transport!r}; expected one of {_TRANSPORTS}")
    if transport == "pickle":
        return False
    fan_out = will_use_processes(backend, workers, n_items)
    if transport == "shm":
        if not HAS_SHARED_MEMORY:
            raise RuntimeError("transport='shm' requested but shared memory is unavailable")
        return fan_out
    return fan_out and HAS_SHARED_MEMORY


def _resolve_cache(cache, backend: str, kind: str):
    """Resolve a ``cache=`` spec into ``(cache, shared, backend)``.

    ``None`` passes through.  ``True`` or an existing
    :class:`~repro.core.fastclassify.TemporalCoherenceCache` without a
    store is purely in-process state: it forces the serial backend and
    refuses ``backend="process"``.  ``"shared"``, a directory path, a
    :class:`~repro.cache.shared.SharedArrayCache`, or a cache already
    wired to a store resolves to the on-disk cross-process namespace,
    which composes with every backend.
    """
    if cache is None:
        return None, False, backend
    from repro.core.fastclassify import TemporalCoherenceCache

    if cache is True:
        cache = TemporalCoherenceCache()
    elif isinstance(cache, (str, Path)):
        root = None if cache == "shared" else cache
        cache = TemporalCoherenceCache(store=SharedArrayCache(root))
    elif isinstance(cache, SharedArrayCache):
        cache = TemporalCoherenceCache(store=cache)
    if getattr(cache, "store", None) is not None:
        return cache, True, backend
    if backend == "process":
        raise ValueError(
            f"an in-memory cache requires in-process execution (its {kind} "
            "cannot be shared across worker processes); use backend='serial' "
            "or 'auto', or pass cache='shared' (or a cache directory path) "
            "for the on-disk cross-process backend")
    return cache, False, "serial"


def _task_caches(cache, shared: bool, fan_out: bool, n_items: int) -> list:
    """Per-task cache objects: clones over the shared store when fanning
    out (nothing rides the pickle), the one live object otherwise."""
    if cache is not None and shared and fan_out:
        return [cache.worker_clone() for _ in range(n_items)]
    return [cache] * n_items


def _sample_training_mask(mask, n: int, rng) -> np.ndarray:
    """Subsample a boolean mask down to at most ``n`` set voxels."""
    idx = np.argwhere(mask)
    if len(idx) == 0:
        raise ValueError("training mask selects no voxels")
    if len(idx) > n:
        idx = idx[rng.choice(len(idx), size=n, replace=False)]
    out = np.zeros(mask.shape, dtype=bool)
    out[tuple(idx.T)] = True
    return out


def train_sequence_classifier(sequence: VolumeSequence, *, mask: str,
                              train_steps: list[int], samples: int = 150,
                              radius: int = 0, epochs: int = 300,
                              seed: int = 11) -> tuple[DataSpaceClassifier, int]:
    """Train a data-space classifier from a sequence's ground-truth masks.

    This is the exact training recipe of ``repro classify`` — one RNG
    seeded once drives every subsample, the shell radius derives from the
    first training step's mask when ``radius <= 0`` — factored out so the
    serve daemon and the CLI produce bit-identical classifiers for equal
    parameters (the property the serve differential tests pin).

    Returns ``(classifier, radius)``; raises :class:`ValueError` when a
    training mask is empty.
    """
    rng = np.random.default_rng(seed)
    if radius <= 0:
        radius = derive_shell_radius(sequence.at_time(train_steps[0]).mask(mask))
    extractor = ShellFeatureExtractor(radius=radius)
    classifier = DataSpaceClassifier(extractor, seed=seed)
    for t in train_steps:
        vol = sequence.at_time(t)
        gt = vol.mask(mask)
        classifier.add_examples(
            vol,
            positive_mask=_sample_training_mask(gt, samples, rng),
            negative_mask=_sample_training_mask(~gt, samples, rng),
        )
    classifier.train(epochs=epochs)
    return classifier, radius


def _classify_one(payload) -> tuple:
    classifier, volume, opts = payload
    # A classifier pickled mid-session can carry stats from an earlier
    # call; clear them so only *this* task's work rides back.
    classifier.last_fast_stats = None
    result = classifier.classify(volume, **opts)
    return result, classifier.last_fast_stats


def _classify_one_shm(payload) -> tuple:
    classifier, handle, opts = payload
    classifier.last_fast_stats = None
    with OpenSharedVolume(handle) as volume:
        result = classifier.classify(volume, **opts)
    return result, classifier.last_fast_stats


_CLASSIFY_STAT_KEYS = ("voxels", "blocks_total", "blocks_pruned",
                       "cache_hits", "cache_misses")


def _unwrap_classify(outcome) -> list:
    """Split (result, stats) task tuples; aggregate worker-side counters.

    :meth:`DataSpaceClassifier.classify` already feeds the ``classify.*``
    counters in-process, which is the parent itself on the serial
    backend — so ridden stats are folded in only when the map actually
    fanned out to workers (whose registries died with them).
    """
    results = []
    totals = dict.fromkeys(_CLASSIFY_STAT_KEYS, 0)
    for item in outcome.results:
        if item is None:
            results.append(None)
            continue
        result, stats = item
        results.append(result)
        if stats:
            for key in _CLASSIFY_STAT_KEYS:
                totals[key] += int(stats.get(key, 0))
    if outcome.backend in ("process", "pool"):
        metrics = get_metrics()
        for key, value in totals.items():
            if value:
                metrics.counter(f"classify.{key}").inc(value)
    return results


def classify_sequence(classifier: DataSpaceClassifier, sequence: VolumeSequence,
                      workers: int | None = None, backend: str = "auto",
                      transport: str = "auto", retry=None,
                      on_error: str = "raise", mode: str = "exact",
                      prune: bool = False, cache=None,
                      pool: WorkerPool | None = None) -> list[np.ndarray]:
    """Classify every step of a sequence, optionally in parallel.

    The classifier is a few kilobytes of weights and rides in every task;
    the voxels travel by ``transport`` — shared memory when the map fans
    out (each worker sees only its own step, the cluster deployment
    pattern of Sec. 8, without re-pickling the volume per task).

    ``mode``/``prune`` forward to :meth:`DataSpaceClassifier.classify`.
    ``cache`` enables temporal-coherence reuse across steps:

    - ``True`` or a :class:`~repro.core.fastclassify.TemporalCoherenceCache`
      instance (to keep warm state between calls) is in-process state —
      it forces the serial backend, and requesting ``backend="process"``
      with it is an error;
    - ``"shared"``, a cache directory path, or a
      :class:`~repro.cache.shared.SharedArrayCache` routes blocks through
      the on-disk cross-process store, which composes with any backend
      and ``workers`` — every worker reads and writes one
      content-addressed namespace, and hit/miss counts ride the task
      results back into the parent's ``classify.*`` counters.

    ``pool`` dispatches the map onto a resident
    :class:`~repro.parallel.pool.WorkerPool` instead of a fresh process
    pool, and broadcasts the classifier so its weights cross each worker
    pipe once per run instead of once per task.  Composes with both
    transports and the shared cache.
    """
    cache, shared, backend = _resolve_cache(cache, backend, "hit state")
    fan_out = will_use_processes(backend, workers, len(sequence))
    caches = _task_caches(cache, shared, fan_out, len(sequence))
    opts = [{"mode": mode, "prune": prune, "cache": c} for c in caches]
    task_classifier = (pool.broadcast(classifier)
                       if pool is not None and fan_out else classifier)
    with get_metrics().span("pipeline.classify_sequence", steps=len(sequence),
                            mode=mode, prune=bool(prune),
                            cached=cache is not None, shared_cache=shared):
        if _use_shm(transport, backend, workers, len(sequence)):
            with SharedVolumeArena() as arena:
                payloads = [(task_classifier, arena.share(vol), o)
                            for vol, o in zip(sequence, opts)]
                outcome = map_timesteps(_classify_one_shm, payloads, workers=workers,
                                        backend=backend, retry=retry, on_error=on_error,
                                        pool=pool)
        else:
            payloads = [(task_classifier, vol, o) for vol, o in zip(sequence, opts)]
            outcome = map_timesteps(_classify_one, payloads, workers=workers,
                                    backend=backend, retry=retry, on_error=on_error,
                                    pool=pool)
    return _unwrap_classify(outcome)


def _generate_tf_one(payload) -> TransferFunction1D:
    iatf, volume = payload
    return iatf.generate(volume)


def generate_sequence_tfs(iatf: AdaptiveTransferFunction, sequence: VolumeSequence,
                          workers: int | None = None, backend: str = "auto",
                          retry=None, on_error: str = "raise",
                          pool: WorkerPool | None = None
                          ) -> list[TransferFunction1D]:
    """Generate the adaptive TF for every step of a sequence.

    This is the "create an IATF … and send [it] to parallel systems or
    remote machines for rendering" workflow of Sec. 4.2.3.  (TF
    generation reads only each step's histogram, so payloads stay on the
    pickle path — the result, not the volume, dominates here.)  ``pool``
    reuses a resident worker pool and broadcasts the IATF once per
    worker.
    """
    fan_out = will_use_processes(backend, workers, len(sequence))
    task_iatf = pool.broadcast(iatf) if pool is not None and fan_out else iatf
    with get_metrics().span("pipeline.generate_sequence_tfs", steps=len(sequence)):
        payloads = [(task_iatf, vol) for vol in sequence]
        outcome = map_timesteps(_generate_tf_one, payloads, workers=workers,
                                backend=backend, retry=retry, on_error=on_error,
                                pool=pool)
    return outcome.results


def volume_digest(volume) -> str:
    """Content digest of one volume's voxels (and per-voxel masks).

    The resumable runner (:mod:`repro.run`) folds this into every
    artifact key so a regenerated-but-identical sequence resumes cleanly
    while any voxel change invalidates exactly the steps it touches.
    """
    data = volume.data if isinstance(volume, Volume) else np.asarray(volume)
    blobs = [data]
    if isinstance(volume, Volume):
        for name in sorted(volume.masks):
            blobs.append(np.frombuffer(name.encode(), dtype=np.uint8))
            blobs.append(volume.mask(name))
    return content_digest(*blobs)


def _render_frame(volume, tf, camera, step, shading, mode, fast_opts):
    if mode == "fast":
        return render_volume_fast(volume, tf, camera=camera, step=step,
                                  shading=shading, **fast_opts)
    return render_volume(volume, tf, camera=camera, step=step, shading=shading)


def frame_digest(volume, tf: TransferFunction1D, camera: Camera, step: float,
                 shading: bool, renderer: str = "exact") -> str:
    """Content digest of everything one rendered frame depends on.

    Covers the voxels, the TF's effective opacity *and* color tables and
    domain, the full camera state, the sampling step, shading, and a
    renderer signature (so exact/fast frames and different fast-path
    parameters never alias).  Two frames with equal digests render
    identically, which is what lets :func:`render_sequence` reuse frames
    across steps whose volumes repeat (steady regions, periodic flows).
    """
    data = volume.data if isinstance(volume, Volume) else np.asarray(volume)
    params = repr((camera.azimuth, camera.elevation, camera.width, camera.height,
                   camera.zoom, camera.projection, camera.eye_distance,
                   float(step), bool(shading), renderer)).encode()
    return content_digest(
        data,
        np.asarray(tf.opacity),
        np.asarray(tf.color_at(tf.entry_values()), dtype=np.float32),
        np.asarray((tf.lo, tf.hi), dtype=np.float64),
        np.frombuffer(params, dtype=np.uint8),
    )


def _render_cached(volume, tf, camera, step, shading, mode, fast_opts,
                   cache, sig) -> tuple:
    """Render one frame through the optional frame cache.

    Returns ``(image, stats)`` — the hit/miss tally rides the task result
    so the parent can aggregate ``render.frame_cache.*`` counters even
    when this ran in a worker process whose own registry dies with it.
    """
    if cache is not None:
        key = frame_digest(volume, tf, camera, step, shading, sig)
        pixels = cache.get(key)
        if pixels is not None:
            return Image.from_array(pixels), {"hits": 1, "misses": 0}
    image = _render_frame(volume, tf, camera, step, shading, mode, fast_opts)
    if cache is not None:
        cache.put(key, image.pixels.copy())
        return image, {"hits": 0, "misses": 1}
    return image, None


def _render_one(payload):
    volume, tf, camera, step, shading, mode, fast_opts, cache, sig = payload
    return _render_cached(volume, tf, camera, step, shading, mode, fast_opts,
                          cache, sig)


def _render_one_shm(payload):
    handle, tf, camera, step, shading, mode, fast_opts, cache, sig = payload
    with OpenSharedVolume(handle) as volume:
        return _render_cached(volume, tf, camera, step, shading, mode,
                              fast_opts, cache, sig)


def _unwrap_render(outcome) -> list:
    """Split (image, stats) task tuples; total the frame-cache counters.

    Unlike classify, the workers never touch the counters themselves, so
    the parent aggregates unconditionally — one code path for serial and
    process backends.
    """
    results = []
    hits = misses = 0
    for item in outcome.results:
        if item is None:
            results.append(None)
            continue
        image, stats = item
        results.append(image)
        if stats:
            hits += stats["hits"]
            misses += stats["misses"]
    metrics = get_metrics()
    if hits:
        metrics.counter("render.frame_cache.hits").inc(hits)
    if misses:
        metrics.counter("render.frame_cache.misses").inc(misses)
    return results


def render_sequence(sequence: VolumeSequence, tfs, camera: Camera | None = None,
                    step: float = 1.0, shading: bool = True,
                    workers: int | None = None, backend: str = "auto",
                    transport: str = "auto", retry=None,
                    on_error: str = "raise", mode: str = "exact",
                    fast_options: dict | None = None, cache=None,
                    pool: WorkerPool | None = None) -> list:
    """Render every step with its own transfer function.

    ``tfs`` is either one shared :class:`TransferFunction1D` or a list with
    one TF per step (the IATF output).  Returns one
    :class:`~repro.render.image.Image` per step (``None`` for steps
    skipped under ``on_error="skip"``).

    ``mode="fast"`` routes frames through the tile/ESS/ERT renderer
    (:func:`repro.render.fastcast.render_volume_fast`) with
    ``fast_options`` forwarded (``tile``, ``ert_alpha``, ``cell``, …).
    When the *sequence* map fans out to processes, each step's tiles are
    forced in-process (one pool, no nesting); give the fast path its tile
    workers by keeping the sequence map serial.

    ``cache`` enables content-keyed frame reuse.  Keys cover volume + TF
    + camera + renderer (:func:`frame_digest`), so a hit returns
    bit-identical pixels.  ``True`` or a
    :class:`~repro.core.fastclassify.TemporalCoherenceCache` instance (to
    keep frames warm across calls) is in-process state — it forces the
    serial backend, and ``backend="process"`` with it is an error;
    ``"shared"``, a cache directory path, or a
    :class:`~repro.cache.shared.SharedArrayCache` routes frames through
    the on-disk cross-process store and composes with any backend and
    ``workers``, with hit/miss counts riding the task results back to the
    parent's ``render.frame_cache.*`` counters.

    ``pool`` dispatches onto a resident
    :class:`~repro.parallel.pool.WorkerPool` and broadcasts the camera
    (plus the TF, when all steps share one object) so the invariants ship
    to each worker once per run.
    """
    camera = camera or Camera()
    if mode not in ("exact", "fast"):
        raise ValueError(f"unknown render mode {mode!r}; expected 'exact' or 'fast'")
    if fast_options is not None and mode != "fast":
        raise ValueError("fast_options requires mode='fast'")
    if isinstance(tfs, TransferFunction1D):
        tfs = [tfs] * len(sequence)
    tfs = list(tfs)
    if len(tfs) != len(sequence):
        raise ValueError(f"need one TF per step: got {len(tfs)} TFs for {len(sequence)} steps")
    cache, shared, backend = _resolve_cache(cache, backend, "frame store")
    fast_opts = dict(fast_options or {})
    fan_out = will_use_processes(backend, workers, len(sequence))
    if mode == "fast" and fan_out:
        # The per-step fan-out owns the process pool; nesting a tile pool
        # inside each worker would oversubscribe, so tiles stay in-process.
        fast_opts["workers"] = 1
        fast_opts["backend"] = "serial"
    caches = _task_caches(cache, shared, fan_out, len(sequence))
    task_camera = camera
    task_tfs = tfs
    if pool is not None and fan_out:
        task_camera = pool.broadcast(camera)
        if len({id(tf) for tf in tfs}) == 1:
            task_tfs = [pool.broadcast(tfs[0])] * len(tfs)
    # The renderer signature covers only pixel-affecting options: how the
    # tiles were scheduled (workers/backend) cannot change the frame, and
    # folding it in would stop serial and fanned runs from sharing cache
    # entries.
    render_opts = {k: v for k, v in fast_opts.items()
                   if k not in ("workers", "backend")}
    sig = "exact" if mode == "exact" else f"fast:{sorted(render_opts.items())!r}"
    with get_metrics().span("pipeline.render_sequence", steps=len(sequence),
                            mode=mode, cached=cache is not None,
                            shared_cache=shared):
        if _use_shm(transport, backend, workers, len(sequence)):
            with SharedVolumeArena() as arena:
                payloads = [(arena.share(vol), tf, task_camera, step, shading,
                             mode, fast_opts, c, sig)
                            for vol, tf, c in zip(sequence, task_tfs, caches)]
                outcome = map_timesteps(_render_one_shm, payloads, workers=workers,
                                        backend=backend, retry=retry, on_error=on_error,
                                        pool=pool)
        else:
            payloads = [(vol, tf, task_camera, step, shading, mode, fast_opts,
                         c, sig)
                        for vol, tf, c in zip(sequence, task_tfs, caches)]
            outcome = map_timesteps(_render_one, payloads, workers=workers,
                                    backend=backend, retry=retry, on_error=on_error,
                                    pool=pool)
    return _unwrap_render(outcome)


@dataclass
class PipelinedResult:
    """Outputs of one :func:`run_pipelined` call, aligned by step index.

    ``certainties`` is ``None`` when no classifier was given; ``tfs`` and
    ``images`` are ``None`` when no TF source was given (nothing to
    render).
    """

    certainties: list | None
    tfs: list | None
    images: list | None


def run_pipelined(sequence: VolumeSequence, classifier: DataSpaceClassifier | None = None,
                  iatf: AdaptiveTransferFunction | None = None, tfs=None,
                  camera: Camera | None = None, *, step: float = 1.0,
                  shading: bool = True, mode: str = "exact",
                  fast_options: dict | None = None,
                  classify_mode: str = "exact", prune: bool = False,
                  workers: int | None = None, pool: WorkerPool | None = None,
                  retry=None) -> PipelinedResult:
    """Run classify + TF + render per step as an overlapped dataflow.

    The barrier orchestration (:func:`classify_sequence`, then
    :func:`generate_sequence_tfs`, then :func:`render_sequence`) waits
    for the *slowest* step of each stage before any step enters the
    next.  But render of step *t* only depends on the TF of step *t* —
    so here each step's chain ``tf(t) → render(t)`` is submitted as a
    dataflow: the TF future's done-callback submits that step's render,
    and classification (an independent output) interleaves with both.
    Rendering of early steps overlaps classification of late ones, and
    the gaps a straggler leaves in one stage are filled with work from
    another.

    TF source: pass ``iatf`` to generate per-step TFs, or ``tfs`` (one
    shared :class:`TransferFunction1D` or one per step) to use fixed
    ones; with neither, nothing renders and only classification runs.
    ``classifier`` is optional and independent.  Results are assembled
    in step order, so outputs are identical to the barrier version.

    Scheduling: an explicit ``pool`` (resident workers, invariants
    broadcast once per worker) is the intended fast path; without one,
    ``workers > 1`` builds a private pool for the call, and otherwise the
    chains run serially interleaved (step-by-step) in-process — same
    outputs, bounded memory.  Payloads travel by pickle (compose with
    :func:`classify_sequence`'s shm transport by using the barrier
    helpers instead when volumes dominate).  Failures follow
    ``on_error="raise"`` semantics: the first chain to exhaust its
    retries raises :class:`~repro.parallel.executor.TaskError`.
    """
    if mode not in ("exact", "fast"):
        raise ValueError(f"unknown render mode {mode!r}; expected 'exact' or 'fast'")
    if fast_options is not None and mode != "fast":
        raise ValueError("fast_options requires mode='fast'")
    if iatf is not None and tfs is not None:
        raise ValueError("pass either iatf or tfs, not both")
    n = len(sequence)
    tf_list = None
    if tfs is not None:
        tf_list = [tfs] * n if isinstance(tfs, TransferFunction1D) else list(tfs)
        if len(tf_list) != n:
            raise ValueError(f"need one TF per step: got {len(tf_list)} TFs for {n} steps")
    rendering = iatf is not None or tf_list is not None
    if classifier is None and not rendering:
        raise ValueError("nothing to do: pass a classifier, an iatf, or tfs")
    camera = camera or Camera()
    fast_opts = dict(fast_options or {})
    opts = {"mode": classify_mode, "prune": prune, "cache": None}

    own_pool = None
    if pool is None and workers is not None and workers > 1 and n > 1:
        own_pool = pool = WorkerPool(workers=workers)
    try:
        with get_metrics().span("pipeline.run_pipelined", steps=n,
                                pooled=pool is not None, mode=mode):
            if pool is None or n < 1:
                return _run_pipelined_serial(sequence, classifier, iatf, tf_list,
                                             camera, step, shading, mode,
                                             fast_opts, opts, rendering)
            return _run_pipelined_pool(sequence, classifier, iatf, tf_list,
                                       camera, step, shading, mode, fast_opts,
                                       opts, rendering, pool, retry)
    finally:
        if own_pool is not None:
            own_pool.close()


def _run_pipelined_serial(sequence, classifier, iatf, tf_list, camera, step,
                          shading, mode, fast_opts, opts, rendering) -> PipelinedResult:
    certainties = [] if classifier is not None else None
    out_tfs = [] if rendering else None
    images = [] if rendering else None
    for t, vol in enumerate(sequence):
        if classifier is not None:
            result, _ = _classify_one((classifier, vol, opts))
            certainties.append(result)
        if rendering:
            tf_t = iatf.generate(vol) if iatf is not None else tf_list[t]
            out_tfs.append(tf_t)
            images.append(_render_frame(vol, tf_t, camera, step, shading,
                                        mode, fast_opts))
    return PipelinedResult(certainties, out_tfs, images)


def _run_pipelined_pool(sequence, classifier, iatf, tf_list, camera, step,
                        shading, mode, fast_opts, opts, rendering, pool,
                        retry) -> PipelinedResult:
    n = len(sequence)
    if mode == "fast":
        # The step fan-out owns the workers; tiles stay in-process.
        fast_opts = dict(fast_opts, workers=1, backend="serial")
    sig = ("exact" if mode == "exact" else
           f"fast:{sorted((k, v) for k, v in fast_opts.items() if k not in ('workers', 'backend'))!r}")
    clf_ref = pool.broadcast(classifier) if classifier is not None else None
    iatf_ref = pool.broadcast(iatf) if iatf is not None else None
    cam_ref = pool.broadcast(camera) if rendering else None
    classify_futs: list = [None] * n
    tf_futs: list = [None] * n
    render_futs: list = [None] * n

    def submit_render(t, vol, tf_t):
        payload = (vol, tf_t, cam_ref, step, shading, mode, fast_opts, None, sig)
        render_futs[t] = pool.submit(_render_one, payload, index=t, retry=retry)

    for t, vol in enumerate(sequence):
        if clf_ref is not None:
            classify_futs[t] = pool.submit(_classify_one, (clf_ref, vol, opts),
                                           index=t, retry=retry)
        if iatf_ref is not None:
            fut = pool.submit(_generate_tf_one, (iatf_ref, vol), index=t, retry=retry)

            def chain(f, t=t, vol=vol):
                if f.ok:
                    submit_render(t, vol, f.value)

            fut.add_done_callback(chain)
            tf_futs[t] = fut
        elif tf_list is not None:
            submit_render(t, vol, tf_list[t])

    # Two waits: the first drains classify + TF chains (every TF callback
    # has fired by then, so all render futures exist); the second drains
    # the renders those callbacks submitted.
    pool.wait([f for f in classify_futs + tf_futs if f is not None])
    pool.wait([f for f in render_futs if f is not None])

    for stage_futs in (classify_futs, tf_futs, render_futs):
        for fut in stage_futs:
            if fut is not None and not fut.ok:
                raise TaskError(fut.failure)

    certainties = None
    if classifier is not None:
        certainties = []
        totals: dict = {}
        for fut in classify_futs:
            result, stats = fut.value
            certainties.append(result)
            for key, value in (stats or {}).items():
                totals[key] = totals.get(key, 0) + int(value or 0)
        metrics = get_metrics()
        for key in _CLASSIFY_STAT_KEYS:
            if totals.get(key):
                metrics.counter(f"classify.{key}").inc(totals[key])
    out_tfs = images = None
    if rendering:
        out_tfs = ([f.value for f in tf_futs] if iatf is not None else list(tf_list))
        images = [f.value[0] for f in render_futs]
    return PipelinedResult(certainties, out_tfs, images)


def extraction_masks(certainties, threshold: float = 0.5) -> np.ndarray:
    """Stack per-step certainty fields into 4D boolean criteria.

    Bridges :func:`classify_sequence` output into
    :meth:`repro.core.tracking.FeatureTracker.track_with_criteria`.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    return np.stack([np.asarray(c) > threshold for c in certainties], axis=0)
