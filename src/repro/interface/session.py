"""Interactive session: the paint → train → feedback → refine loop (Sec. 6).

:class:`InteractiveSession` glues the painting metaphor, the data-space
classifier, and the slice feedback views together the way the paper's UI
does: strokes accumulate training data, training proceeds in idle-loop
increments, and classification previews (slice or whole volume) are
available at any point for the user (or the :class:`Oracle`) to react to.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataspace import DataSpaceClassifier
from repro.interface.oracle import Oracle
from repro.interface.painting import PaintStroke
from repro.render.slicer import classification_overlay
from repro.volume.grid import Volume


@dataclass
class RoundRecord:
    """Bookkeeping for one interaction round."""

    round_index: int
    strokes_added: int
    samples_added: int
    training_loss: float
    accuracy: float | None


class InteractiveSession:
    """A headless stand-in for the Fig. 11 interface.

    Parameters
    ----------
    volume:
        The time step being painted on (more can be added with
        :meth:`add_volume` — the paper trains across a few steps so the
        classifier adapts over time).
    classifier:
        The learning engine; a default one is built when omitted.
    idle_epochs:
        Training epochs run per idle-loop call — small, so the "UI" stays
        responsive and the user sees the classification sharpen over
        rounds.
    """

    def __init__(self, volume: Volume, classifier: DataSpaceClassifier | None = None,
                 idle_epochs: int = 40) -> None:
        if idle_epochs < 1:
            raise ValueError(f"idle_epochs must be >= 1, got {idle_epochs}")
        self.volumes: list[Volume] = [volume]
        self.classifier = classifier if classifier is not None else DataSpaceClassifier()
        self.idle_epochs = int(idle_epochs)
        self.strokes: list[PaintStroke] = []
        self.history: list[RoundRecord] = []

    @property
    def volume(self) -> Volume:
        """The most recently added volume (the active canvas)."""
        return self.volumes[-1]

    def add_volume(self, volume: Volume) -> None:
        """Switch the canvas to another time step (training data persists)."""
        self.volumes.append(volume)

    # ------------------------------------------------------------------ #
    # Painting
    # ------------------------------------------------------------------ #
    def paint(self, stroke: PaintStroke, volume: Volume | None = None) -> int:
        """Apply one stroke: resolve voxels, add training samples.

        Returns the number of voxel samples added.
        """
        volume = volume or self.volume
        coords = stroke.voxels(volume.shape)
        if len(coords) == 0:
            return 0
        mask = np.zeros(volume.shape, dtype=bool)
        mask[tuple(coords.T)] = True
        if stroke.label >= 0.5:
            added = self.classifier.add_examples(volume, positive_mask=mask)
        else:
            added = self.classifier.add_examples(volume, negative_mask=mask)
        self.strokes.append(stroke)
        return added

    def paint_many(self, strokes, volume: Volume | None = None) -> int:
        """Apply a list of strokes; returns total samples added."""
        return sum(self.paint(s, volume=volume) for s in strokes)

    # ------------------------------------------------------------------ #
    # Training & feedback
    # ------------------------------------------------------------------ #
    def idle_train(self) -> float:
        """One idle-loop training slice; returns the current loss."""
        return self.classifier.train_increment(epochs=self.idle_epochs)

    def preview_slice(self, axis: int, index: int, volume: Volume | None = None) -> np.ndarray:
        """Real-time per-slice classification (the fast feedback path)."""
        volume = volume or self.volume
        return self.classifier.classify_slice(volume, axis, index)

    def preview_volume(self, volume: Volume | None = None) -> np.ndarray:
        """Whole-volume classification (the slower feedback path)."""
        volume = volume or self.volume
        return self.classifier.classify(volume)

    def overlay_image(self, axis: int, index: int, volume: Volume | None = None):
        """Slice view with the live classification tinted on top —
        what the interface windows in Fig. 11 display."""
        volume = volume or self.volume
        cert_plane = self.preview_slice(axis, index, volume=volume)
        certainty = np.zeros(volume.shape, dtype=np.float32)
        slicer: list = [slice(None)] * 3
        slicer[axis] = index
        certainty[tuple(slicer)] = cert_plane
        return classification_overlay(volume, certainty, axis, index)

    # ------------------------------------------------------------------ #
    # Scripted refinement (the Fig. 11 experiment driver)
    # ------------------------------------------------------------------ #
    def run_with_oracle(self, oracle: Oracle, rounds: int = 4,
                        strokes_per_round: int = 8,
                        truth_mask_name: str | None = None) -> list[RoundRecord]:
        """Run the full interaction loop with a scripted scientist.

        Round 0 paints blind (a few positive/negative dabs); later rounds
        are corrective, painting where the current classification disagrees
        with the oracle's intent.  When ``truth_mask_name`` is given, each
        round records voxel accuracy against that mask so the Fig. 11 bench
        can plot quality vs interaction effort.
        """
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        from repro.metrics import classification_accuracy

        for r in range(int(rounds)):
            if r == 0:
                strokes = oracle.paint_round(
                    self.volume,
                    n_positive=strokes_per_round // 2,
                    n_negative=strokes_per_round - strokes_per_round // 2,
                )
            else:
                certainty = self.preview_volume()
                strokes = oracle.corrective_round(
                    self.volume, certainty, n_strokes=strokes_per_round
                )
            samples = self.paint_many(strokes)
            loss = self.idle_train()
            accuracy = None
            if truth_mask_name is not None:
                certainty = self.preview_volume()
                accuracy = classification_accuracy(
                    certainty, self.volume.mask(truth_mask_name)
                )
            self.history.append(
                RoundRecord(
                    round_index=r,
                    strokes_added=len(strokes),
                    samples_added=samples,
                    training_loss=loss,
                    accuracy=accuracy,
                )
            )
        return self.history


def suggest_paint_locations(classifier, volume, n: int = 5,
                            min_separation: int = 4, seed=0) -> np.ndarray:
    """Suggest where painting next would teach the classifier most.

    Uncertainty sampling over the current classification: voxels whose
    certainty is closest to 0.5 are the ones whose labels the network
    cannot predict — one stroke there resolves more ambiguity than a
    stroke on a confidently-classified region.  Suggestions are spread at
    least ``min_separation`` voxels apart so a round of strokes covers
    several ambiguous areas instead of one.

    Returns ``(n, 3)`` voxel coordinates (possibly fewer when the volume
    has fewer ambiguous regions).  This closes the Sec. 6 loop from the
    system's side: instead of the scientist hunting for mistakes, the
    "intelligent" system points at its own blind spots.
    """
    from repro.utils.rng import as_generator

    certainty = classifier.classify(volume)
    ambiguity = -np.abs(certainty.astype(np.float64) - 0.5)
    flat_order = np.argsort(ambiguity.ravel())[::-1]
    rng = as_generator(seed)
    # Small deterministic shuffle among equal-ambiguity voxels.
    coords_all = np.stack(np.unravel_index(flat_order[: max(50 * n, 500)],
                                           certainty.shape), axis=1)
    rng.shuffle(coords_all[: 10 * n])
    chosen: list[np.ndarray] = []
    for c in coords_all:
        if len(chosen) >= n:
            break
        if all(np.abs(c - p).max() >= min_separation for p in chosen):
            chosen.append(c)
    return np.asarray(chosen, dtype=np.int64).reshape(-1, 3)


def select_feature_at(classifier, volume, point, threshold: float = 0.5):
    """Select the whole connected feature containing a clicked voxel.

    Sec. 6: *"the system also allows the user to select small features from
    the window of feature volume, and consider the selected regions as part
    of the unwanted feature"* — one click marks an entire (connected)
    feature instead of painting it voxel by voxel.  The current
    classification provides the membership criterion; region growing from
    the clicked voxel returns the feature's full mask, which the caller
    feeds back as positive or negative training data.

    Returns a boolean mask (empty if the clicked voxel is below threshold).
    """
    from repro.segmentation.regiongrow import grow_region

    certainty = classifier.classify(volume)
    criterion = certainty > threshold
    point = tuple(int(c) for c in point)
    if not criterion[point]:
        return np.zeros(volume.shape, dtype=bool)
    return grow_region(criterion, [point])
