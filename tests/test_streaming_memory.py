"""Peak-memory properties of streaming tracking (tracemalloc).

``grow_4d`` materializes the full criteria stack plus scratch — peak
memory scales linearly with the number of timesteps (documented in its
*Memory* docstring section).  ``FeatureTracker.track_streaming`` holds
one volume + criterion + scratch mask at a time and keeps the tracked
history bit-packed, so its peak should be (a) well below the eager
path's and (b) nearly flat in the sequence length.

These tests assert machine-robust *ratios* rather than absolute byte
counts; the tight "≤ 2 timestep working sets" bar lives in
``benchmarks/test_tracking_throughput.py`` where the workload is large
enough to swamp interpreter noise.
"""

import tracemalloc

import numpy as np
import pytest

from repro.core import FeatureTracker
from repro.data import make_vortex_sequence
from repro.volume.io import save_sequence

GRID = (48, 48, 48)
LO, HI = 0.5, 10.0
SEED = (0, 4, 23, 14)  # on the step-0 vortex core, inside the band


def _streaming_peak(tmp_path, times, label):
    sequence = make_vortex_sequence(shape=GRID, times=times, seed=31)
    seqdir = tmp_path / f"seq_{label}"
    save_sequence(sequence, str(seqdir))
    tracker = FeatureTracker()
    tracemalloc.start()
    result = tracker.track_streaming(str(seqdir), SEED, lo=LO, hi=HI)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert result.voxel_counts[0] > 0
    return peak, result


def test_streaming_peak_well_below_eager(tmp_path):
    times = list(range(50, 74, 4))
    stream_peak, streamed = _streaming_peak(tmp_path, times, "ratio")

    sequence = make_vortex_sequence(shape=GRID, times=times, seed=31)
    tracker = FeatureTracker()
    tracemalloc.start()
    eager = tracker.track_fixed(sequence, SEED, LO, HI)
    _, eager_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert np.array_equal(streamed.masks, eager.masks)
    assert eager_peak / stream_peak >= 1.5


def test_streaming_peak_sublinear_in_steps(tmp_path):
    short = list(range(50, 74, 4))        # 6 steps
    long = list(range(50, 74, 2))         # 12 steps
    peak_short, _ = _streaming_peak(tmp_path, short, "short")
    peak_long, _ = _streaming_peak(tmp_path, long, "long")
    # Linear scaling would double the peak; the streaming path only grows
    # by the packed mask history (8 voxels/byte).
    assert peak_long / peak_short <= 1.6


def test_grow_4d_memory_doc_present():
    from repro.segmentation.regiongrow import grow_4d

    assert "Memory" in grow_4d.__doc__
