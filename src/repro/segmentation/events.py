"""Tracking events: continuation, split, merge, birth, death.

Feature tracking is *"the process of capturing all the events for one or
more features"* (Sec. 5).  Given labeled feature maps at consecutive time
steps, the spatial-overlap correspondence (the paper's temporal-sampling
assumption makes matching features overlap in 3D) yields a bipartite graph;
classifying node degrees in that graph produces the event vocabulary of the
tracking literature, which the Fig. 9 experiment uses to report the vortex
split.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def overlap_graph(labels_a: np.ndarray, labels_b: np.ndarray, min_overlap: int = 1) -> dict:
    """Voxel-overlap counts between features of two labelings.

    Returns ``{(id_a, id_b): overlap_voxels}`` for all pairs overlapping in
    at least ``min_overlap`` voxels.  Computed in one vectorized pass by
    bin-counting the joint label ids.
    """
    labels_a = np.asarray(labels_a)
    labels_b = np.asarray(labels_b)
    if labels_a.shape != labels_b.shape:
        raise ValueError(f"label maps differ in shape: {labels_a.shape} vs {labels_b.shape}")
    if min_overlap < 1:
        raise ValueError(f"min_overlap must be >= 1, got {min_overlap}")
    both = (labels_a > 0) & (labels_b > 0)
    if not both.any():
        return {}
    a = labels_a[both].astype(np.int64)
    b = labels_b[both].astype(np.int64)
    nb = int(b.max()) + 1
    joint = a * nb + b
    counts = np.bincount(joint)
    pairs = np.nonzero(counts >= min_overlap)[0]
    return {(int(j // nb), int(j % nb)): int(counts[j]) for j in pairs}


@dataclass(frozen=True)
class TrackEvent:
    """One event between steps ``time_a`` → ``time_b``.

    ``kind`` is one of ``"continuation"``, ``"split"``, ``"merge"``,
    ``"birth"``, ``"death"`` — plus the two descriptor-matching lineage
    kinds ``"lost"`` (the tracked feature left the criterion without an
    acceptable match at the next step) and ``"reacquired"`` (descriptor
    matching re-identified it after a zero-overlap jump or an occlusion
    gap; ``time_a`` is the last step the feature was seen, ``time_b`` the
    step it was matched at).  ``sources`` are feature ids at ``time_a``,
    ``targets`` at ``time_b`` (empty tuple for birth/death/lost
    respectively).
    """

    kind: str
    time_a: int
    time_b: int
    sources: tuple
    targets: tuple


# Canonical within-step-pair ordering: deaths/splits (keyed by source id),
# then births/merges (keyed by target id), then continuations (source id) —
# exactly the emission order of :func:`detect_events`, made explicit so
# eager and streaming timelines cannot drift apart.  Matching lineage
# events sort after the overlap events of their step pair.
_EVENT_GROUP = {"death": 0, "split": 0, "birth": 1, "merge": 1,
                "continuation": 2, "lost": 3, "reacquired": 3}


def _event_key(event: TrackEvent) -> tuple:
    group = _EVENT_GROUP.get(event.kind, 4)
    if group == 1:
        primary = event.targets[0] if event.targets else 0
    else:
        primary = (event.sources[0] if event.sources
                   else (event.targets[0] if event.targets else 0))
    return (event.time_a, event.time_b, group, primary)


def canonical_event_order(events) -> list[TrackEvent]:
    """Sort events into the canonical ``(time, component-id)`` order.

    The key is ``(time_a, time_b, kind-group, primary id)`` with the
    group ranks of ``_EVENT_GROUP``; on a timeline produced by
    :func:`detect_events` / :func:`track_timeline` the sort is the
    identity (the differential test in ``tests/test_descriptors.py`` pins
    this), so applying it everywhere costs nothing while guaranteeing
    every result type reports one ordering.
    """
    return sorted(events, key=_event_key)


def merge_match_events(timeline, match_events) -> list[TrackEvent]:
    """Fold descriptor-matching lineage events into an overlap timeline.

    The overlap timeline cannot see through a zero-overlap jump or an
    occlusion gap: it reports the tracked feature's disappearance as a
    ``death`` and its reappearance as an unrelated ``birth``.  When the
    tracker's descriptor fallback carried identity across the gap, those
    two records are wrong — this folds the tracker's ``lost`` /
    ``reacquired`` events in, dropping the superseded ``death`` (at the
    step pair where the feature was last seen) and ``birth`` (at the
    reacquisition step) and inheriting their component ids, so the merged
    timeline reads as one identity thread.  Events are matched by object
    identity, not equality (``TrackEvent`` is a value type), and each
    lineage event supersedes at most one death and one birth.  With no
    match events this reduces to :func:`canonical_event_order`.
    """
    timeline = list(timeline)
    dropped: set[int] = set()
    # A `lost` and a later `reacquired` over the same gap share their
    # time_a, but the overlap timeline holds only ONE death there — keep
    # its sources around so both lineage events can inherit them.
    death_sources: dict[int, tuple] = {}

    def _take(kind: str, predicate):
        for event in timeline:
            if id(event) in dropped or event.kind != kind:
                continue
            if predicate(event):
                dropped.add(id(event))
                return event
        return None

    merged: list[TrackEvent] = []
    for match in match_events:
        if match.kind == "lost":
            death = _take("death", lambda ev: ev.time_a == match.time_a
                          and ev.time_b == match.time_b)
            if death is not None:
                death_sources[death.time_a] = death.sources
                match = TrackEvent("lost", match.time_a, match.time_b,
                                   death.sources, ())
            merged.append(match)
        elif match.kind == "reacquired":
            death = _take("death", lambda ev: ev.time_a == match.time_a)
            birth = _take("birth", lambda ev: ev.time_b == match.time_b)
            if death is not None:
                death_sources[death.time_a] = death.sources
            sources = death_sources.get(match.time_a, match.sources)
            merged.append(TrackEvent(
                "reacquired", match.time_a, match.time_b, sources,
                birth.targets if birth is not None else match.targets))
        else:
            merged.append(match)
    kept = [event for event in timeline if id(event) not in dropped]
    return canonical_event_order(kept + merged)


def detect_events(labels_a, labels_b, time_a: int = 0, time_b: int = 1,
                  min_overlap: int = 1) -> list[TrackEvent]:
    """Classify the overlap graph between two labeled steps into events.

    Rules (standard in the feature-tracking literature the paper cites):

    - feature in A overlapping exactly one feature in B which in turn
      overlaps only it → *continuation*;
    - feature in A overlapping ≥2 features in B → *split*;
    - feature in B overlapped by ≥2 features in A → *merge*;
    - feature in B with no overlap → *birth*;
    - feature in A with no overlap → *death*.

    A many-to-many tangle is reported as both a split (per A-feature) and a
    merge (per B-feature); callers needing exclusivity can post-filter.
    """
    labels_a = np.asarray(labels_a)
    labels_b = np.asarray(labels_b)
    graph = overlap_graph(labels_a, labels_b, min_overlap=min_overlap)
    ids_a = set(np.unique(labels_a[labels_a > 0]).tolist())
    ids_b = set(np.unique(labels_b[labels_b > 0]).tolist())
    succ: dict[int, set] = {i: set() for i in ids_a}
    pred: dict[int, set] = {i: set() for i in ids_b}
    for (ia, ib) in graph:
        succ[ia].add(ib)
        pred[ib].add(ia)

    events: list[TrackEvent] = []
    for ia in sorted(ids_a):
        targets = succ[ia]
        if not targets:
            events.append(TrackEvent("death", time_a, time_b, (ia,), ()))
        elif len(targets) >= 2:
            events.append(
                TrackEvent("split", time_a, time_b, (ia,), tuple(sorted(targets)))
            )
    for ib in sorted(ids_b):
        sources = pred[ib]
        if not sources:
            events.append(TrackEvent("birth", time_a, time_b, (), (ib,)))
        elif len(sources) >= 2:
            events.append(
                TrackEvent("merge", time_a, time_b, tuple(sorted(sources)), (ib,))
            )
    for ia in sorted(ids_a):
        targets = succ[ia]
        if len(targets) == 1:
            ib = next(iter(targets))
            if len(pred[ib]) == 1:
                events.append(TrackEvent("continuation", time_a, time_b, (ia,), (ib,)))
    return events


def track_timeline(labelings, times=None, min_overlap: int = 1) -> list[TrackEvent]:
    """Run :func:`detect_events` across a whole sequence of labelings.

    ``labelings`` is a list of label maps; ``times`` optionally supplies
    the simulation step ids (defaults to 0, 1, 2, …).
    """
    labelings = list(labelings)
    if times is None:
        times = list(range(len(labelings)))
    times = list(times)
    if len(times) != len(labelings):
        raise ValueError("times and labelings must have equal length")
    events: list[TrackEvent] = []
    for (la, ta), (lb, tb) in zip(
        zip(labelings[:-1], times[:-1]), zip(labelings[1:], times[1:])
    ):
        events.extend(detect_events(la, lb, time_a=ta, time_b=tb, min_overlap=min_overlap))
    return events
