"""Streaming out-of-core sequence processing (paper Secs. 4.2.3, 8).

The paper's deployment story for very long runs: the trained artifact is
tiny, each time step is independent, and steps live on disk — so workers
should *load, process, and drop* one step at a time instead of holding the
sequence in memory.  These helpers run a per-step function over a saved
sequence directory that way:

- :func:`stream_map` — serial streaming map (peak memory ≈ one step);
- :func:`stream_map_parallel` — process-pool variant where each worker
  loads its own step from disk (nothing but the artifact and the step path
  crosses the process boundary, matching the cluster pattern where nodes
  read their own bricks);
- :func:`prefetch_map` — ordered single-consumer map with a background
  producer thread, so step *t+1*'s I/O happens while step *t* is being
  processed (the streaming tracker's double-buffered loader).
"""

from __future__ import annotations

import json
import queue
import threading
import time as _time
from pathlib import Path

from repro.obs import get_metrics
from repro.parallel.executor import map_timesteps
from repro.volume.io import load_volume


def sequence_step_stems(directory, times=None) -> list[tuple[int, Path]]:
    """``(time, stem)`` pairs for every step of a saved sequence.

    ``times`` optionally restricts (and validates) the selection: a
    requested step id missing from the manifest raises ``KeyError``
    instead of being silently dropped.  The manifest's format version is
    checked here, so every streaming consumer rejects an incompatible
    directory up front rather than mid-run.
    """
    directory = Path(directory)
    manifest = json.loads((directory / "sequence.json").read_text())
    version = manifest.get("format_version")
    if version is not None and version != 1:
        raise ValueError(f"unsupported sequence format version: {version}")
    stems = [
        (int(time), directory / stem)
        for stem, time in zip(manifest["steps"], manifest["times"])
    ]
    if times is None:
        return stems
    wanted = set(int(t) for t in times)
    kept = [(t, stem) for t, stem in stems if t in wanted]
    if len(kept) != len(wanted):
        have = {t for t, _ in kept}
        raise KeyError(f"missing time steps {sorted(wanted - have)} in {directory}")
    return kept


def stream_map(fn, directory, times=None, mmap: bool = False):
    """Serial streaming map: yield ``(time, fn(volume))`` per step.

    Only one step's voxels are resident at a time; results are yielded as
    they are produced so callers can also stream their consumption.
    """
    metrics = get_metrics()
    for time, stem in sequence_step_stems(directory, times=times):
        volume = load_volume(stem, mmap=mmap)
        with metrics.span("stream.step", time=time):
            result = fn(volume)
        yield time, result


def prefetch_map(fn, items, depth: int = 1):
    """Iterate ``fn(item)`` in order, computing up to ``depth`` items ahead.

    A daemon producer thread evaluates ``fn`` on upcoming items while the
    consumer processes the current result — the streaming tracker uses
    this to load and decode timestep *t+1* while *t* is being classified
    and grown.  The overlap is only real when ``fn`` spends its time off
    the GIL (file I/O, decompression); GIL-bound numpy work serializes
    against the consumer, so keep that on the consumer side.  The
    look-ahead is bounded *before* computation starts (a semaphore
    ticket per in-flight result), so at ``depth=1`` peak memory grows by
    exactly one prefetched result plus the producer's transients, never
    a whole pipeline of them.  The iterator itself retains no reference
    to a delivered result — once the consumer drops it, it is gone (a
    suspended generator frame would pin each result for a whole extra
    iteration, one full volume in the tracker's case).

    Results arrive strictly in item order.  An exception from ``fn``
    re-raises at the consumer's matching pull; if the consumer abandons
    the iterator, the producer is signalled and exits after its
    in-flight item.  ``fn`` runs on the producer thread and must be safe
    to call there.
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    return _PrefetchIterator(fn, list(items), depth)


class _PrefetchIterator:
    """Single-consumer iterator over a bounded producer thread."""

    def __init__(self, fn, items, depth: int) -> None:
        self._remaining = len(items)
        self._out: queue.Queue = queue.Queue()
        self._slots = threading.Semaphore(depth)
        self._stop = threading.Event()
        if items:
            self._producer = threading.Thread(
                target=self._produce, args=(fn, items),
                name="repro-prefetch", daemon=True)
            self._producer.start()

    def _produce(self, fn, items) -> None:
        for item in items:
            while not self._slots.acquire(timeout=0.1):
                if self._stop.is_set():
                    return
            if self._stop.is_set():
                return
            try:
                self._out.put((True, fn(item)))
            except BaseException as exc:  # re-raised at the consumer's pull
                self._out.put((False, exc))
                return

    def __iter__(self) -> "_PrefetchIterator":
        return self

    def __next__(self):
        if self._remaining <= 0:
            raise StopIteration
        ok, payload = self._out.get()
        if not ok:
            self._remaining = 0
            self._stop.set()
            raise payload
        self._remaining -= 1
        # Release before returning: the producer starts on the next item
        # while the consumer processes this one (the overlap), but never
        # runs more than ``depth`` results past the consumer's last pull.
        self._slots.release()
        get_metrics().counter("stream.prefetched").inc()
        return payload

    def close(self) -> None:
        """Signal the producer to exit (also triggered by abandonment)."""
        self._stop.set()

    def __del__(self) -> None:
        self._stop.set()


def _stream_worker(payload):
    fn, stem = payload
    return fn(load_volume(stem))


def stream_map_parallel(fn, directory, times=None, workers: int | None = None,
                        backend: str = "auto", retry=None,
                        on_error: str = "raise") -> list[tuple[int, object]]:
    """Process-pool streaming map over a saved sequence.

    ``fn`` must be picklable; each worker loads its own step from disk, so
    the parent never materializes the sequence.  Results return in step
    order as ``(time, result)`` pairs.  ``retry``/``on_error`` forward to
    :func:`repro.parallel.executor.map_timesteps`; with
    ``on_error="skip"`` a failed step's result slot holds ``None``.

    The manifest is read exactly once, so the mapped items and the
    returned step times cannot desync even if the directory is rewritten
    mid-call.
    """
    items: list[tuple] = []
    kept_times: list[int] = []
    for time, stem in sequence_step_stems(directory, times=times):
        items.append((fn, stem))
        kept_times.append(time)
    with get_metrics().span("stream.map_parallel", steps=len(items)):
        outcome = map_timesteps(_stream_worker, items, workers=workers,
                                backend=backend, retry=retry, on_error=on_error)
    return list(zip(kept_times, outcome.results))

# --------------------------------------------------------------------- #
# Directory watching (in-situ follow mode)
# --------------------------------------------------------------------- #
def step_ready(stem, quiescence: float = 0.05, now: float | None = None):
    """Probe whether a step's on-disk files are complete and quiescent.

    Returns ``(time, signature)`` when the step at ``stem`` can be loaded
    safely, else ``None``.  A step is ready when its ``<stem>.json``
    sidecar parses, the ``.raw`` brick (and every listed mask brick)
    exists at exactly the byte size the sidecar's shape implies, and no
    file was modified within the last ``quiescence`` seconds.

    A writer using the repo's atomic conventions
    (:mod:`repro.utils.atomic`) always passes once the sidecar lands —
    renames are atomic and the sidecar is written last.  The size +
    quiescence checks exist for *foreign* writers that stream bytes
    straight into the final name: a torn half-written brick reads as
    not-yet-arrived instead of garbage voxels.

    ``signature`` captures ``(size, mtime_ns)`` of every file, so a
    caller can detect a later re-write of the same step by comparing
    signatures.
    """
    stem = Path(stem)
    json_path = stem.with_suffix(".json")
    try:
        meta = json.loads(json_path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(meta, dict) or meta.get("format_version") != 1:
        return None
    if "shape" not in meta or "time" not in meta:
        return None
    voxels = 1
    for n in meta["shape"]:
        voxels = voxels * int(n)
    checks = [(json_path, None), (stem.with_suffix(".raw"), voxels * 4)]
    for mask_name in meta.get("masks", []):
        safe = str(mask_name).replace("/", "_")
        checks.append((stem.parent / f"{stem.name}.{safe}.mask.raw", voxels))
    newest = 0.0
    signature = []
    for path, want_size in checks:
        try:
            st = path.stat()
        except OSError:
            return None
        if want_size is not None and st.st_size != want_size:
            return None
        newest = max(newest, st.st_mtime)
        signature.append((path.name, st.st_size, st.st_mtime_ns))
    now = _time.time() if now is None else now
    if now - newest < quiescence:
        return None
    return int(meta["time"]), tuple(signature)


class SequenceWatcher:
    """Incremental scanner over a sequence directory being written live.

    Each :meth:`scan` reports the steps that became ready (or were
    re-written) since the previous scan, in time order.  Completion is
    signalled by the writer's ``sequence.json`` manifest — written last
    by :func:`repro.volume.io.save_sequence` and by
    :class:`repro.run.simwriter.SimulatedWriter` — whose step list
    :meth:`manifest_times` exposes once present.
    """

    def __init__(self, directory, quiescence: float = 0.05) -> None:
        self.directory = Path(directory)
        self.quiescence = float(quiescence)
        self._seen: dict[str, tuple] = {}  # stem name -> last signature

    def scan(self) -> list[tuple[int, Path, bool]]:
        """``(time, stem, rewritten)`` for every newly-ready step.

        ``rewritten`` marks a step whose files changed *after* it was
        already reported ready — the duplicate re-write case a follower
        must either dedup (same content) or reprocess (new content).
        """
        arrived: list[tuple[int, Path, bool]] = []
        if not self.directory.is_dir():
            return arrived
        now = _time.time()
        for json_path in sorted(self.directory.glob("*.json")):
            if json_path.name == "sequence.json":
                continue
            stem = json_path.with_suffix("")
            probe = step_ready(stem, quiescence=self.quiescence, now=now)
            if probe is None:
                continue
            step_time, signature = probe
            previous = self._seen.get(stem.name)
            if previous == signature:
                continue
            self._seen[stem.name] = signature
            arrived.append((step_time, stem, previous is not None))
        arrived.sort(key=lambda item: item[0])
        return arrived

    def settled(self) -> bool:
        """True when no reported step has a rewrite pending or in flight.

        A writer may re-write a step and only then publish its completion
        manifest; at that instant the rewrite can still be inside the
        quiescence window, where :meth:`scan` reports nothing.  Consumers
        must therefore not treat "all manifest times seen" as final until
        every reported step's on-disk signature again matches what was
        last reported — a mismatch (or an unreadable/torn state) means a
        change is still propagating.
        """
        now = _time.time()
        for name, signature in self._seen.items():
            probe = step_ready(self.directory / name,
                               quiescence=self.quiescence, now=now)
            if probe is None or probe[1] != signature:
                return False
        return True

    def manifest_times(self) -> list[int] | None:
        """Step ids of the completed sequence, or ``None`` while the
        writer has not yet published ``sequence.json``."""
        try:
            manifest = json.loads((self.directory / "sequence.json").read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(manifest, dict):
            return None
        version = manifest.get("format_version")
        if version is not None and version != 1:
            raise ValueError(f"unsupported sequence format version: {version}")
        return [int(t) for t in manifest.get("times", [])]
