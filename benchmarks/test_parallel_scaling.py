"""Parallel scaling — the Sec. 8 cluster claim, measured.

*"Since the processing of each time step is completely independent of
other time steps, it is feasible and desirable to employ a large PC
cluster to conduct the final feature extraction and rendering
concurrently."*  The process-pool task farm is the repository's cluster
stand-in; this benchmark measures the speedup of whole-sequence
data-space classification across worker counts.  On multi-core hosts it
asserts useful scaling (the workload is embarrassingly parallel; overhead
is pickling the tiny trained classifier plus one volume per task); on a
single-core host speedup cannot manifest, so only correctness and an
overhead bound are asserted and the table is reported for the record.
"""

import json
import os
import pickle
from pathlib import Path

import numpy as np
from _helpers import sample_mask

from repro.core import DataSpaceClassifier, ShellFeatureExtractor, classify_sequence
from repro.data import make_cosmology_sequence
from repro.parallel import SharedVolumeArena
from repro.utils.timing import Timer


def _write_bench(name: str, payload: dict) -> Path:
    """Drop a ``BENCH_<name>.json`` next to the pytest cwd (CI artifact)."""
    out = Path(os.environ.get("REPRO_BENCH_DIR", ".")) / f"BENCH_{name}.json"
    out.write_text(json.dumps(payload, indent=2))
    return out


def build_workload():
    sequence = make_cosmology_sequence(
        shape=(48, 48, 48), times=list(range(100, 340, 30)), seed=23
    )
    clf = DataSpaceClassifier(ShellFeatureExtractor(radius=2), seed=5)
    vol = sequence.at_time(100)
    large, small = vol.mask("large"), vol.mask("small")
    clf.add_examples(
        vol,
        positive_mask=sample_mask(large, 150, seed=1),
        negative_mask=(sample_mask(small, 80, seed=2)
                       | sample_mask(~(large | small), 80, seed=3)),
    )
    clf.train(epochs=150)
    return clf, sequence


def test_parallel_scaling(benchmark):
    clf, sequence = build_workload()
    cores = os.cpu_count() or 2
    counts = [1, 2] + ([4] if cores >= 4 else [])

    timings = {}
    results = {}
    for workers in counts:
        backend = "serial" if workers == 1 else "process"
        with Timer() as t:
            results[workers] = classify_sequence(
                clf, sequence, workers=workers, backend=backend
            )
        timings[workers] = t.elapsed

    benchmark.pedantic(
        lambda: classify_sequence(clf, sequence, workers=max(counts), backend="process"),
        rounds=3, iterations=1,
    )

    print(f"\nPer-timestep classification scaling ({len(sequence)} steps, 48^3 each):")
    print(f"{'workers':>8} {'seconds':>9} {'speedup':>8}")
    for workers in counts:
        speedup = timings[1] / timings[workers]
        print(f"{workers:>8} {timings[workers]:>9.2f} {speedup:>8.2f}x")
        benchmark.extra_info[f"workers_{workers}"] = round(timings[workers], 3)
    _write_bench("parallel_scaling", {
        "steps": len(sequence),
        "grid": "48^3",
        "cores": cores,
        "seconds_by_workers": {str(w): timings[w] for w in counts},
        "speedup_by_workers": {str(w): timings[1] / timings[w] for w in counts},
    })

    # identical results regardless of worker count
    for workers in counts[1:]:
        for a, b in zip(results[1], results[workers]):
            assert np.allclose(a, b)
    if cores >= 2:
        # real speedup at 2 workers (modest bound: pickling + fork overhead)
        assert timings[1] / timings[2] > 1.2
        if 4 in counts:
            assert timings[1] / timings[4] > timings[1] / timings[2] * 0.9
    else:
        # single-core machine: scaling cannot manifest; the farm must at
        # least stay correct and within ~2x of serial (overhead bound)
        print("single-core host: speedup assertions skipped")
        assert timings[2] < 2.5 * timings[1]


def test_shm_transport_ipc_win(benchmark):
    """Shared-memory volume transport vs per-task pickling.

    The pickle path ships every voxel of every step through the IPC pipe
    inside its task payload; the shm path parks the voxels in a named
    segment once and ships a ~100-byte handle.  The payload reduction is
    deterministic, so it is asserted; wall-clock is reported for the
    record (on laptop-scale 48^3 volumes the win is modest — it grows
    with volume size toward the paper's 256^3 configuration).
    """
    clf, sequence = build_workload()

    # Per-task IPC payload, measured exactly as Pool would pickle it.
    vol = sequence[0]
    pickle_payload = len(pickle.dumps((clf, vol)))
    with SharedVolumeArena() as arena:
        shm_payload = len(pickle.dumps((clf, arena.share(vol))))
    voxel_bytes = vol.data.nbytes
    reduction = 1.0 - shm_payload / pickle_payload

    timings = {}
    results = {}
    for transport in ("pickle", "shm"):
        with Timer() as t:
            results[transport] = classify_sequence(
                clf, sequence, workers=2, backend="process", transport=transport
            )
        timings[transport] = t.elapsed

    benchmark.pedantic(
        lambda: classify_sequence(clf, sequence, workers=2, backend="process",
                                  transport="shm"),
        rounds=3, iterations=1,
    )
    benchmark.extra_info["pickle_payload_bytes"] = pickle_payload
    benchmark.extra_info["shm_payload_bytes"] = shm_payload

    print(f"\nVolume transport, per-task IPC payload ({len(sequence)} steps, "
          f"{voxel_bytes} voxel bytes each):")
    print(f"{'transport':>10} {'payload B':>12} {'seconds':>9}")
    for transport in ("pickle", "shm"):
        payload = pickle_payload if transport == "pickle" else shm_payload
        print(f"{transport:>10} {payload:>12} {timings[transport]:>9.2f}")
    print(f"payload reduction: {reduction:.1%}")

    _write_bench("shm_transport", {
        "steps": len(sequence),
        "voxel_bytes_per_step": voxel_bytes,
        "pickle_payload_bytes": pickle_payload,
        "shm_payload_bytes": shm_payload,
        "payload_reduction": reduction,
        "seconds_pickle": timings["pickle"],
        "seconds_shm": timings["shm"],
    })

    # identical certainty fields through either transport
    for a, b in zip(results["pickle"], results["shm"]):
        assert np.allclose(a, b)
    # the shm payload must drop (almost) the whole voxel block per task
    assert shm_payload <= pickle_payload - int(0.9 * voxel_bytes)
