"""Tracked-feature highlight rendering (paper Sec. 7).

The paper's rule for rendering tracking results: *"when a voxel's value in
the region growing texture is one, its color is set to red and its opacity
is set to the opacity in the adaptive transfer function.  Otherwise, the
color and opacity looked up from the user specified 1D transfer function
are shown."*  The GPU version does this in multiple passes over a 3D
region-growing texture; here we bake the rule into a per-voxel RGBA volume
and send it through :func:`repro.render.raycast.render_rgba_volume`.
"""

from __future__ import annotations

import numpy as np

from repro.render.camera import Camera
from repro.render.fastcast import render_rgba_volume_fast
from repro.render.image import Image
from repro.render.raycast import render_rgba_volume
from repro.transfer.tf1d import TransferFunction1D
from repro.volume.grid import Volume

HIGHLIGHT_RED = (0.9, 0.08, 0.08)


def tracked_rgba(
    volume,
    tracked_mask: np.ndarray,
    context_tf: TransferFunction1D,
    adaptive_tf: TransferFunction1D | None = None,
    highlight_color=HIGHLIGHT_RED,
    min_highlight_opacity: float = 0.35,
) -> np.ndarray:
    """Build the combined RGBA volume for a tracked feature + context.

    Parameters
    ----------
    volume:
        The scalar field at this time step.
    tracked_mask:
        Boolean region-growing result for this step.
    context_tf:
        The user's 1D transfer function (colors/opacity for everything
        outside the tracked feature — "the original volume for providing
        content", Fig. 9 caption).
    adaptive_tf:
        The IATF-generated TF supplying the tracked voxels' opacity; when
        ``None`` the context TF's opacity is used.
    min_highlight_opacity:
        Floor on tracked-voxel opacity so the feature stays visible even
        where the adaptive TF is faint — one of the paper's "variety of
        highlighting criteria".
    """
    data = volume.data if isinstance(volume, Volume) else np.asarray(volume, dtype=np.float32)
    tracked_mask = np.asarray(tracked_mask, dtype=bool)
    if tracked_mask.shape != data.shape:
        raise ValueError(
            f"tracked mask shape {tracked_mask.shape} != volume shape {data.shape}"
        )
    rgba = np.empty(data.shape + (4,), dtype=np.float32)
    rgba[..., :3] = context_tf.color_at(data)
    rgba[..., 3] = context_tf.opacity_at(data)

    opacity_tf = adaptive_tf if adaptive_tf is not None else context_tf
    tracked_opacity = opacity_tf.opacity_at(data[tracked_mask])
    rgba[tracked_mask, 0] = highlight_color[0]
    rgba[tracked_mask, 1] = highlight_color[1]
    rgba[tracked_mask, 2] = highlight_color[2]
    rgba[tracked_mask, 3] = np.maximum(tracked_opacity, min_highlight_opacity)
    return rgba


def render_tracked(
    volume,
    tracked_mask: np.ndarray,
    context_tf: TransferFunction1D,
    adaptive_tf: TransferFunction1D | None = None,
    camera: Camera | None = None,
    step: float = 1.0,
    shading: bool = True,
    highlight_color=HIGHLIGHT_RED,
    fast: bool = False,
    fast_options: dict | None = None,
) -> Image:
    """Render one time step with the tracked feature highlighted in red.

    This is the Fig. 9 frame renderer; Sec. 7 reports ~4 fps for it on the
    paper's GPU versus ~6 fps for the plain pass — the multi-pass overhead
    ratio our Sec. 7 bench reproduces.

    ``fast=True`` sends the baked RGBA volume through the tile/ESS/ERT
    renderer (:func:`repro.render.fastcast.render_rgba_volume_fast`) with
    ``fast_options`` forwarded (``tile``, ``workers``, ``ert_alpha``,
    ``cell``, …) — bit-identical at the default termination threshold.
    """
    if fast_options is not None and not fast:
        raise ValueError("fast_options requires fast=True")
    data = volume.data if isinstance(volume, Volume) else np.asarray(volume, dtype=np.float32)
    rgba = tracked_rgba(
        volume, tracked_mask, context_tf, adaptive_tf, highlight_color=highlight_color
    )
    if fast:
        return render_rgba_volume_fast(
            rgba,
            camera=camera,
            step=step,
            shading_field=data if shading else None,
            **(fast_options or {}),
        )
    return render_rgba_volume(
        rgba,
        camera=camera,
        step=step,
        shading_field=data if shading else None,
    )
