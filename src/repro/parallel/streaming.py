"""Streaming out-of-core sequence processing (paper Secs. 4.2.3, 8).

The paper's deployment story for very long runs: the trained artifact is
tiny, each time step is independent, and steps live on disk — so workers
should *load, process, and drop* one step at a time instead of holding the
sequence in memory.  These helpers run a per-step function over a saved
sequence directory that way:

- :func:`stream_map` — serial streaming map (peak memory ≈ one step);
- :func:`stream_map_parallel` — process-pool variant where each worker
  loads its own step from disk (nothing but the artifact and the step path
  crosses the process boundary, matching the cluster pattern where nodes
  read their own bricks);
- :func:`prefetch_map` — ordered single-consumer map with a background
  producer thread, so step *t+1*'s I/O happens while step *t* is being
  processed (the streaming tracker's double-buffered loader).
"""

from __future__ import annotations

import json
import queue
import threading
from pathlib import Path

from repro.obs import get_metrics
from repro.parallel.executor import map_timesteps
from repro.volume.io import load_volume


def sequence_step_stems(directory, times=None) -> list[tuple[int, Path]]:
    """``(time, stem)`` pairs for every step of a saved sequence.

    ``times`` optionally restricts (and validates) the selection: a
    requested step id missing from the manifest raises ``KeyError``
    instead of being silently dropped.  The manifest's format version is
    checked here, so every streaming consumer rejects an incompatible
    directory up front rather than mid-run.
    """
    directory = Path(directory)
    manifest = json.loads((directory / "sequence.json").read_text())
    version = manifest.get("format_version")
    if version is not None and version != 1:
        raise ValueError(f"unsupported sequence format version: {version}")
    stems = [
        (int(time), directory / stem)
        for stem, time in zip(manifest["steps"], manifest["times"])
    ]
    if times is None:
        return stems
    wanted = set(int(t) for t in times)
    kept = [(t, stem) for t, stem in stems if t in wanted]
    if len(kept) != len(wanted):
        have = {t for t, _ in kept}
        raise KeyError(f"missing time steps {sorted(wanted - have)} in {directory}")
    return kept


def stream_map(fn, directory, times=None, mmap: bool = False):
    """Serial streaming map: yield ``(time, fn(volume))`` per step.

    Only one step's voxels are resident at a time; results are yielded as
    they are produced so callers can also stream their consumption.
    """
    metrics = get_metrics()
    for time, stem in sequence_step_stems(directory, times=times):
        volume = load_volume(stem, mmap=mmap)
        with metrics.span("stream.step", time=time):
            result = fn(volume)
        yield time, result


def prefetch_map(fn, items, depth: int = 1):
    """Iterate ``fn(item)`` in order, computing up to ``depth`` items ahead.

    A daemon producer thread evaluates ``fn`` on upcoming items while the
    consumer processes the current result — the streaming tracker uses
    this to load and decode timestep *t+1* while *t* is being classified
    and grown.  The overlap is only real when ``fn`` spends its time off
    the GIL (file I/O, decompression); GIL-bound numpy work serializes
    against the consumer, so keep that on the consumer side.  The
    look-ahead is bounded *before* computation starts (a semaphore
    ticket per in-flight result), so at ``depth=1`` peak memory grows by
    exactly one prefetched result plus the producer's transients, never
    a whole pipeline of them.  The iterator itself retains no reference
    to a delivered result — once the consumer drops it, it is gone (a
    suspended generator frame would pin each result for a whole extra
    iteration, one full volume in the tracker's case).

    Results arrive strictly in item order.  An exception from ``fn``
    re-raises at the consumer's matching pull; if the consumer abandons
    the iterator, the producer is signalled and exits after its
    in-flight item.  ``fn`` runs on the producer thread and must be safe
    to call there.
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    return _PrefetchIterator(fn, list(items), depth)


class _PrefetchIterator:
    """Single-consumer iterator over a bounded producer thread."""

    def __init__(self, fn, items, depth: int) -> None:
        self._remaining = len(items)
        self._out: queue.Queue = queue.Queue()
        self._slots = threading.Semaphore(depth)
        self._stop = threading.Event()
        if items:
            self._producer = threading.Thread(
                target=self._produce, args=(fn, items),
                name="repro-prefetch", daemon=True)
            self._producer.start()

    def _produce(self, fn, items) -> None:
        for item in items:
            while not self._slots.acquire(timeout=0.1):
                if self._stop.is_set():
                    return
            if self._stop.is_set():
                return
            try:
                self._out.put((True, fn(item)))
            except BaseException as exc:  # re-raised at the consumer's pull
                self._out.put((False, exc))
                return

    def __iter__(self) -> "_PrefetchIterator":
        return self

    def __next__(self):
        if self._remaining <= 0:
            raise StopIteration
        ok, payload = self._out.get()
        if not ok:
            self._remaining = 0
            self._stop.set()
            raise payload
        self._remaining -= 1
        # Release before returning: the producer starts on the next item
        # while the consumer processes this one (the overlap), but never
        # runs more than ``depth`` results past the consumer's last pull.
        self._slots.release()
        get_metrics().counter("stream.prefetched").inc()
        return payload

    def close(self) -> None:
        """Signal the producer to exit (also triggered by abandonment)."""
        self._stop.set()

    def __del__(self) -> None:
        self._stop.set()


def _stream_worker(payload):
    fn, stem = payload
    return fn(load_volume(stem))


def stream_map_parallel(fn, directory, times=None, workers: int | None = None,
                        backend: str = "auto", retry=None,
                        on_error: str = "raise") -> list[tuple[int, object]]:
    """Process-pool streaming map over a saved sequence.

    ``fn`` must be picklable; each worker loads its own step from disk, so
    the parent never materializes the sequence.  Results return in step
    order as ``(time, result)`` pairs.  ``retry``/``on_error`` forward to
    :func:`repro.parallel.executor.map_timesteps`; with
    ``on_error="skip"`` a failed step's result slot holds ``None``.

    The manifest is read exactly once, so the mapped items and the
    returned step times cannot desync even if the directory is rewritten
    mid-call.
    """
    items: list[tuple] = []
    kept_times: list[int] = []
    for time, stem in sequence_step_stems(directory, times=times):
        items.append((fn, stem))
        kept_times.append(time)
    with get_metrics().span("stream.map_parallel", steps=len(items)):
        outcome = map_timesteps(_stream_worker, items, workers=workers,
                                backend=backend, retry=retry, on_error=on_error)
    return list(zip(kept_times, outcome.results))
