"""Software direct-volume-rendering substrate.

The paper renders with view-aligned 3D textures and fragment programs on a
GeForce 6800 (Sec. 7).  This package is the software equivalent: the same
pipeline stages — per-sample transfer-function lookup, gradient Phong
shading, front-to-back alpha compositing, multi-pass tracked-feature
highlighting, axis-aligned slicing for the painting interface — implemented
as vectorized numpy over ray-sample batches.

- :mod:`repro.render.image` — RGBA image buffer and PPM export.
- :mod:`repro.render.raycast` — orthographic ray caster (scalar + TF, or a
  precomputed RGBA volume) with early ray termination.
- :mod:`repro.render.fastcast` — tile-parallel fast path over the same
  semantics: macro-cell empty-space skipping, per-ray box clipping, and
  configurable early termination (bit-identical at the default cutoff).
- :mod:`repro.render.shading` — gradient-based Phong headlight shading.
- :mod:`repro.render.multipass` — the Sec. 7 tracked-feature highlight
  pass (tracked voxels forced red, opacity from the adaptive TF).
- :mod:`repro.render.slicer` — slice images for the Sec. 6 painting UI.
"""

from repro.render.camera import Camera
from repro.render.fastcast import (
    SkipGrid,
    build_alpha_skip_grid,
    build_skip_grid,
    render_rgba_volume_fast,
    render_volume_fast,
)
from repro.render.image import Image
from repro.render.image_metrics import image_difference, mse, psnr, ssim
from repro.render.multipass import render_tracked
from repro.render.plots import bar_chart, line_chart
from repro.render.raycast import render_rgba_volume, render_volume
from repro.render.slicer import slice_image
from repro.render.shading import phong_shade
from repro.render.validation import (
    AgreementReport,
    agreement_overlay,
    agreement_report,
    tracking_agreement,
)

__all__ = [
    "AgreementReport",
    "Camera",
    "Image",
    "SkipGrid",
    "agreement_overlay",
    "agreement_report",
    "bar_chart",
    "build_alpha_skip_grid",
    "build_skip_grid",
    "image_difference",
    "line_chart",
    "mse",
    "psnr",
    "ssim",
    "tracking_agreement",
    "phong_shade",
    "render_rgba_volume",
    "render_rgba_volume_fast",
    "render_tracked",
    "render_volume",
    "render_volume_fast",
    "slice_image",
]
