#!/usr/bin/env python
"""CI perf-regression gate for the benchmark JSON artifacts.

Compares every gated metric of a freshly produced ``BENCH_*.json``
against the committed baseline and fails on a regression beyond
``--tolerance``.  Two metric families, gated in opposite directions:

- ``speedup_*`` — bigger is better; fails when the fresh value drops
  below ``baseline * (1 - tolerance)``.
- ``latency_*`` — smaller is better; fails when the fresh value rises
  above ``baseline * (1 + tolerance)``.

Only *machine-relative* ratios belong in committed speedup baselines
(fused-vs-gather and friends) — absolute voxels/sec vary wildly across
CI hosts, but a path that is 11x faster than its reference on one
machine does not become 2x on another unless the code regressed.
Latency keys are absolute and therefore only meaningful against a
baseline captured on comparable hardware (the nightly trajectory hosts);
a ``BENCH_*.json`` may freely report latencies that the committed
baseline chooses not to gate.  The committed baselines are deliberately
conservative floors, not development-host measurements, so noisy
runners don't flake.

Usage:
    python benchmarks/check_perf_regression.py BENCH_classify.json \
        benchmarks/baselines/BENCH_classify_baseline.json --tolerance 0.25
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def iter_metrics(payload: dict, prefix: str = ""):
    """Yield (dotted_key, value) for every gated metric number, nested."""
    for key, value in payload.items():
        dotted = f"{prefix}{key}"
        if isinstance(value, dict):
            yield from iter_metrics(value, prefix=f"{dotted}.")
        elif (key.startswith(("speedup_", "latency_"))
              and isinstance(value, (int, float))):
            yield dotted, float(value)


def iter_speedups(payload: dict, prefix: str = ""):
    """Yield only the ``speedup_*`` metrics (bigger-is-better family)."""
    for dotted, value in iter_metrics(payload, prefix=prefix):
        if dotted.rsplit(".", 1)[-1].startswith("speedup_"):
            yield dotted, value


def iter_latencies(payload: dict, prefix: str = ""):
    """Yield only the ``latency_*`` metrics (smaller-is-better family)."""
    for dotted, value in iter_metrics(payload, prefix=prefix):
        if dotted.rsplit(".", 1)[-1].startswith("latency_"):
            yield dotted, value


def _gate(key: str, base: float, got: float | None, tolerance: float):
    """Return (bound, delta_pct, verdict) for one metric row."""
    reversed_gate = key.rsplit(".", 1)[-1].startswith("latency_")
    bound = base * (1.0 + tolerance) if reversed_gate else base * (1.0 - tolerance)
    if got is None:
        return bound, None, "MISSING"
    delta_pct = 100.0 * (got - base) / base if base else float("nan")
    ok = got <= bound if reversed_gate else got >= bound
    return bound, delta_pct, "ok" if ok else "REGRESSED"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="BENCH_*.json produced by this run")
    parser.add_argument("baseline", help="committed baseline json")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression against the "
                             "baseline (default 0.25: speedups may drop to "
                             "0.75x, latencies may rise to 1.25x)")
    args = parser.parse_args(argv)

    fresh = json.loads(Path(args.fresh).read_text())
    baseline = json.loads(Path(args.baseline).read_text())
    fresh_metrics = dict(iter_metrics(fresh))
    baseline_metrics = dict(iter_metrics(baseline))
    if not baseline_metrics:
        print(f"error: no speedup_*/latency_* keys in baseline {args.baseline}")
        return 2

    failures = []
    n_speedups = n_latencies = 0
    print(f"{'key':<42} {'baseline':>9} {'fresh':>9} {'delta':>8} "
          f"{'bound':>9}  verdict")
    for key, base in sorted(baseline_metrics.items()):
        reversed_gate = key.rsplit(".", 1)[-1].startswith("latency_")
        n_latencies += reversed_gate
        n_speedups += not reversed_gate
        got = fresh_metrics.get(key)
        bound, delta_pct, verdict = _gate(key, base, got, args.tolerance)
        fresh_cell = "-" if got is None else f"{got:9.2f}"
        delta_cell = "-" if delta_pct is None else f"{delta_pct:+7.1f}%"
        print(f"{key:<42} {base:>9.2f} {fresh_cell:>9} {delta_cell:>8} "
              f"{bound:>9.2f}  {verdict}")
        if verdict == "MISSING":
            failures.append(f"{key}: missing from {args.fresh}")
        elif verdict == "REGRESSED":
            direction = "above ceiling" if reversed_gate else "below floor"
            failures.append(
                f"{key}: {got:.2f} {direction} {bound:.2f} "
                f"(baseline {base:.2f}, tolerance {args.tolerance})")

    print(f"\ngated {len(baseline_metrics)} metric(s) "
          f"({n_speedups} speedup, {n_latencies} latency): "
          f"{len(failures)} regression(s)")
    if failures:
        print("perf regression gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("perf regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
