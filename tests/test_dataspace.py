"""Tests for repro.core.dataspace: shell features and per-voxel classifier."""

import numpy as np
import pytest

from repro.core import DataSpaceClassifier, ShellFeatureExtractor, derive_shell_radius
from repro.metrics import feature_retention, noise_suppression
from repro.volume import Volume


def sample_mask(mask, n, seed=0):
    rng = np.random.default_rng(seed)
    coords = np.argwhere(mask)
    sel = coords[rng.choice(len(coords), size=min(n, len(coords)), replace=False)]
    out = np.zeros(mask.shape, dtype=bool)
    out[tuple(sel.T)] = True
    return out


class TestDeriveShellRadius:
    def test_scales_with_feature_thickness(self):
        thin = np.zeros((20, 20, 20), dtype=bool)
        thin[8:12, 8:12, 2:18] = True  # 4-voxel-thick rod
        thick = np.zeros((20, 20, 20), dtype=bool)
        thick[4:16, 4:16, 4:16] = True  # 12-voxel cube
        assert derive_shell_radius(thick) > derive_shell_radius(thin)

    def test_clipping(self):
        tiny = np.zeros((8, 8, 8), dtype=bool)
        tiny[4, 4, 4] = True
        assert derive_shell_radius(tiny) == 1
        huge = np.ones((30, 30, 30), dtype=bool)
        assert derive_shell_radius(huge, max_radius=8) == 8

    def test_empty_mask_raises(self):
        with pytest.raises(ValueError):
            derive_shell_radius(np.zeros((4, 4, 4), dtype=bool))


class TestShellFeatureExtractor:
    def test_feature_count_and_names(self):
        ex = ShellFeatureExtractor(radius=2, directions="faces")
        assert ex.n_shell == 6
        assert ex.n_features == 1 + 6 + 3 + 1
        assert ex.feature_names[0] == "value"
        assert ex.feature_names[-1] == "time"
        assert len(ex.feature_names) == ex.n_features

    def test_corners_direction_set(self):
        ex = ShellFeatureExtractor(directions="faces+corners")
        assert ex.n_shell == 14

    def test_optional_features(self):
        ex = ShellFeatureExtractor(include_position=False, include_time=False)
        assert ex.n_features == 1 + ex.n_shell
        assert "pos_z" not in ex.feature_names

    def test_validation(self):
        with pytest.raises(ValueError):
            ShellFeatureExtractor(radius=0)
        with pytest.raises(ValueError):
            ShellFeatureExtractor(directions="sphere")

    def test_center_value_is_first_feature(self):
        data = np.arange(27, dtype=np.float32).reshape(3, 3, 3)
        ex = ShellFeatureExtractor(radius=1, include_position=False, include_time=False)
        feats = ex.features_at(data, [(1, 1, 1)])
        assert feats[0, 0] == data[1, 1, 1]

    def test_shell_distinguishes_sizes(self):
        """A voxel deep in a big block sees a high shell; a voxel in a tiny
        blob sees background — the size signal of Sec. 4.3."""
        data = np.zeros((20, 20, 20), dtype=np.float32)
        data[4:16, 4:16, 4:16] = 1.0  # big
        data[18, 18, 18] = 1.0  # tiny
        ex = ShellFeatureExtractor(radius=3, include_position=False, include_time=False)
        big = ex.features_at(data, [(10, 10, 10)])[0]
        tiny = ex.features_at(data, [(18, 18, 18)])[0]
        assert big[0] == tiny[0] == 1.0  # same center value
        assert big[1:].mean() > tiny[1:].mean() + 0.5  # very different shells

    def test_sorted_shell_orientation_invariant(self):
        """Rotating a rod must not change its (sorted) shell signature."""
        rod_x = np.zeros((15, 15, 15), dtype=np.float32)
        rod_x[7, 7, 2:13] = 1.0
        rod_z = np.zeros((15, 15, 15), dtype=np.float32)
        rod_z[2:13, 7, 7] = 1.0
        ex = ShellFeatureExtractor(radius=2, directions="faces",
                                   include_position=False, include_time=False)
        fx = ex.features_at(rod_x, [(7, 7, 7)])[0]
        fz = ex.features_at(rod_z, [(7, 7, 7)])[0]
        assert np.allclose(fx, fz)

    def test_boundary_clamping(self):
        data = np.full((5, 5, 5), 2.0, dtype=np.float32)
        ex = ShellFeatureExtractor(radius=3, include_position=False, include_time=False)
        feats = ex.features_at(data, [(0, 0, 0)])
        assert np.allclose(feats, 2.0)

    def test_position_features_normalized(self):
        data = np.zeros((5, 9, 17), dtype=np.float32)
        ex = ShellFeatureExtractor(radius=1, include_time=False)
        feats = ex.features_at(data, [(4, 8, 16)])
        assert np.allclose(feats[0, -3:], [1.0, 1.0, 1.0])

    def test_time_feature_passthrough(self):
        data = np.zeros((4, 4, 4), dtype=np.float32)
        ex = ShellFeatureExtractor(radius=1)
        feats = ex.features_at(data, [(1, 1, 1)], time=310.0)
        assert feats[0, -1] == 310.0

    def test_coords_validation(self):
        ex = ShellFeatureExtractor(radius=1)
        data = np.zeros((4, 4, 4), dtype=np.float32)
        with pytest.raises(IndexError):
            ex.features_at(data, [(9, 0, 0)])
        with pytest.raises(ValueError):
            ex.features_at(data, [(0, 0)])

    def test_iter_volume_features_covers_all(self):
        data = np.random.default_rng(0).random((6, 6, 6)).astype(np.float32)
        ex = ShellFeatureExtractor(radius=1)
        total = 0
        for flat_slice, feats in ex.iter_volume_features(data, chunk=50):
            total += feats.shape[0]
            assert feats.shape[1] == ex.n_features
        assert total == data.size

    def test_iter_matches_features_at(self):
        data = np.random.default_rng(1).random((4, 5, 6)).astype(np.float32)
        ex = ShellFeatureExtractor(radius=2)
        chunks = [f for _, f in ex.iter_volume_features(data, time=3.0, chunk=37)]
        stacked = np.concatenate(chunks, axis=0)
        coords = np.stack(np.unravel_index(np.arange(data.size), data.shape), axis=1)
        direct = ex.features_at(data, coords, time=3.0)
        assert np.allclose(stacked, direct)


class TestDataSpaceClassifier:
    @pytest.fixture(scope="class")
    def trained(self, cosmology_small):
        """Fig. 8 protocol: train at steps 130 and 310, apply elsewhere."""
        radius = derive_shell_radius(cosmology_small.at_time(310).mask("large"))
        clf = DataSpaceClassifier(ShellFeatureExtractor(radius=radius), seed=5)
        for i, t in enumerate((130, 310)):
            vol = cosmology_small.at_time(t)
            large, small = vol.mask("large"), vol.mask("small")
            pos = sample_mask(large, 120, seed=1 + i)
            neg = sample_mask(small, 80, seed=2 + i) | sample_mask(~(large | small), 80, seed=3 + i)
            clf.add_examples(vol, positive_mask=pos, negative_mask=neg)
        clf.train(epochs=300)
        return clf

    def test_add_examples_counts(self, cosmology_small):
        vol = cosmology_small.at_time(310)
        clf = DataSpaceClassifier(seed=0)
        pos = sample_mask(vol.mask("large"), 20)
        n = clf.add_examples(vol, positive_mask=pos)
        assert n == int(pos.sum())
        assert len(clf.training) == n

    def test_add_examples_requires_a_mask(self, cosmology_small):
        clf = DataSpaceClassifier(seed=0)
        with pytest.raises(ValueError):
            clf.add_examples(cosmology_small.at_time(310))

    def test_separates_large_from_small(self, trained, cosmology_small):
        """The Fig. 7 core claim: per-voxel learning keeps large structures
        and suppresses same-valued tiny features."""
        vol = cosmology_small.at_time(310)
        cert = trained.classify(vol)
        assert feature_retention(cert, vol.mask("large"), 0.5) > 0.85
        assert noise_suppression(cert, vol.mask("small"), 0.5) > 0.85

    def test_generalizes_to_unseen_time_step(self, trained, cosmology_small):
        """The Fig. 8 claim: trained at 130 & 310, works at unseen 250."""
        vol = cosmology_small.at_time(250)
        cert = trained.classify(vol)
        assert feature_retention(cert, vol.mask("large"), 0.5) > 0.7
        assert noise_suppression(cert, vol.mask("small"), 0.5) > 0.7

    def test_classify_slice_matches_volume(self, trained, cosmology_small):
        vol = cosmology_small.at_time(310)
        full = trained.classify(vol)
        plane = trained.classify_slice(vol, 0, 16)
        assert np.allclose(plane, full[16], atol=1e-6)

    def test_classify_slice_axis_validation(self, trained, cosmology_small):
        with pytest.raises(ValueError):
            trained.classify_slice(cosmology_small.at_time(310), 5, 0)

    def test_certainty_range(self, trained, cosmology_small):
        cert = trained.classify(cosmology_small.at_time(310))
        assert cert.min() >= 0.0 and cert.max() <= 1.0

    def test_chunked_classify_matches(self, trained, cosmology_small):
        vol = cosmology_small.at_time(310)
        a = trained.classify(vol, chunk=1 << 18)
        b = trained.classify(vol, chunk=999)
        assert np.allclose(a, b)

    def test_incremental_training(self, cosmology_small):
        vol = cosmology_small.at_time(310)
        clf = DataSpaceClassifier(seed=0)
        clf.add_examples(vol, positive_mask=sample_mask(vol.mask("large"), 50),
                         negative_mask=sample_mask(vol.mask("small"), 50))
        first = clf.train_increment(epochs=5)
        for _ in range(20):
            last = clf.train_increment(epochs=5)
        assert last < first

    def test_with_features_subset(self, trained, cosmology_small):
        """Sec. 6: dropping properties yields a smaller working classifier."""
        keep = [n for n in trained.extractor.feature_names if n != "time"]
        sub = trained.with_features(keep)
        assert sub.net.n_inputs == trained.net.n_inputs - 1
        assert "time" not in sub.extractor.feature_names
        # transferred training data allows retraining
        sub.train(epochs=100)
        vol = cosmology_small.at_time(310)
        cert = sub.classify(vol)
        assert cert.shape == vol.shape

    def test_with_features_subset_slice(self, trained, cosmology_small):
        keep = ["value"] + [n for n in trained.extractor.feature_names if n.startswith("shell")]
        sub = trained.with_features(keep)
        sub.train(epochs=50)
        plane = sub.classify_slice(cosmology_small.at_time(310), 0, 5)
        assert plane.shape == (32, 32)
