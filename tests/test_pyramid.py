"""Tests for repro.volume.pyramid: level-of-detail viewing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.volume import Volume
from repro.volume.pyramid import VolumePyramid, downsample2


class TestDownsample2:
    def test_halves_even_axes(self):
        out = downsample2(np.zeros((8, 6, 4), dtype=np.float32))
        assert out.shape == (4, 3, 2)

    def test_pads_odd_axes(self):
        out = downsample2(np.zeros((5, 7, 9), dtype=np.float32))
        assert out.shape == (3, 4, 5)

    def test_block_mean_exact(self):
        data = np.arange(8, dtype=np.float32).reshape(2, 2, 2)
        out = downsample2(data)
        assert out.shape == (1, 1, 1)
        assert out[0, 0, 0] == pytest.approx(data.mean())

    def test_constant_preserved(self):
        out = downsample2(np.full((6, 6, 6), 3.5, dtype=np.float32))
        assert np.allclose(out, 3.5)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            downsample2(np.zeros((4, 4)))

    @given(seed=st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_mean_preserved_property(self, seed):
        """For even shapes, pooling preserves the global mean exactly."""
        data = np.random.default_rng(seed).random((6, 8, 4)).astype(np.float32)
        out = downsample2(data)
        assert out.mean() == pytest.approx(data.mean(), abs=1e-5)


class TestVolumePyramid:
    def test_auto_levels(self):
        pyr = VolumePyramid(np.zeros((32, 32, 32), dtype=np.float32))
        assert pyr.n_levels >= 3
        assert pyr.shapes()[0] == (32, 32, 32)
        assert pyr.shapes()[1] == (16, 16, 16)

    def test_explicit_levels(self):
        pyr = VolumePyramid(np.zeros((32, 32, 32), dtype=np.float32), levels=2)
        assert pyr.n_levels == 2

    def test_levels_validated(self):
        with pytest.raises(ValueError):
            VolumePyramid(np.zeros((8, 8, 8)), levels=0)

    def test_metadata_propagates(self):
        vol = Volume(np.zeros((8, 8, 8)), time=42, name="argon")
        pyr = VolumePyramid(vol)
        assert pyr.level(1).time == 42
        assert pyr.level(1).name == "argon"

    def test_level_bounds(self):
        pyr = VolumePyramid(np.zeros((8, 8, 8)), levels=2)
        with pytest.raises(IndexError):
            pyr.level(5)

    def test_coarse_render_is_faster(self):
        """The LoD point: navigating at a coarse level costs far less."""
        from repro.render import Camera, render_volume
        from repro.transfer import TransferFunction1D
        from repro.utils.timing import Timer

        rng = np.random.default_rng(0)
        pyr = VolumePyramid(rng.random((64, 64, 64)).astype(np.float32))
        tf = TransferFunction1D((0.0, 1.0)).add_box(0.5, 1.0, 0.4)
        cam = Camera(width=48, height=48)
        with Timer() as fine:
            render_volume(pyr.level(0), tf, cam, shading=False)
        with Timer() as coarse:
            render_volume(pyr.level(2), tf, cam, shading=False)
        assert coarse.elapsed < fine.elapsed


class TestCoarsestLevelWith:
    def make_pyramid(self):
        data = np.zeros((32, 32, 32), dtype=np.float32)
        data[4:20, 4:20, 4:20] = 1.0  # large 16^3 block
        data[26, 26, 26] = 1.0  # single-voxel feature
        large = np.zeros((32, 32, 32), dtype=bool)
        large[4:20, 4:20, 4:20] = True
        small = np.zeros((32, 32, 32), dtype=bool)
        small[26, 26, 26] = True
        return VolumePyramid(data), large, small

    def test_large_feature_survives_coarser_than_small(self):
        pyr, large, small = self.make_pyramid()
        assert pyr.coarsest_level_with(large) > pyr.coarsest_level_with(small)

    def test_small_feature_vanishes_immediately(self):
        pyr, _, small = self.make_pyramid()
        assert pyr.coarsest_level_with(small) == 0

    def test_validation(self):
        pyr, large, _ = self.make_pyramid()
        with pytest.raises(ValueError):
            pyr.coarsest_level_with(np.zeros((32, 32, 32), dtype=bool))
        with pytest.raises(ValueError):
            pyr.coarsest_level_with(np.zeros((4, 4, 4), dtype=bool))

    def test_cosmology_size_separation(self, cosmology_small):
        """The Sec. 4.3 usage: the pyramid level a feature survives to is
        a viewable size measure separating large from small."""
        vol = cosmology_small.at_time(310)
        pyr = VolumePyramid(vol)
        lvl_large = pyr.coarsest_level_with(vol.mask("large"), threshold=0.5)
        lvl_small = pyr.coarsest_level_with(vol.mask("small"), threshold=0.5)
        assert lvl_large > lvl_small
