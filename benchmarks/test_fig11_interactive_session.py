"""Fig. 11 — the interactive painting interface loop.

The figure shows the system's UI: paint a few samples on slices, train in
the idle loop, inspect live per-slice / whole-volume feedback, refine.
Headlessly, the scripted Oracle plays the scientist and we measure how
classification quality grows with interaction rounds — the property that
makes the interface usable ("the user can use this feedback to further
revise the painting").

The bench times one idle-loop training slice — the latency the user feels
between interactions.
"""

from repro.core import DataSpaceClassifier, ShellFeatureExtractor, derive_shell_radius
from repro.interface import InteractiveSession, Oracle
from repro.metrics import classification_accuracy


def test_fig11_interactive_session(cosmology, benchmark):
    vol = cosmology.at_time(310)
    radius = derive_shell_radius(vol.mask("large"))
    classifier = DataSpaceClassifier(ShellFeatureExtractor(radius=radius), seed=2)
    session = InteractiveSession(vol, classifier=classifier, idle_epochs=60)
    oracle = Oracle("large", seed=11, brush_radius=1)

    history = session.run_with_oracle(
        oracle, rounds=4, strokes_per_round=10, truth_mask_name="large"
    )

    # the idle-loop latency with the accumulated training set
    benchmark(session.idle_train)

    print("\nFig. 11 interaction loop (accuracy vs rounds):")
    print(f"{'round':>6} {'strokes':>8} {'samples':>8} {'loss':>8} {'accuracy':>9}")
    for r in history:
        print(f"{r.round_index:>6} {r.strokes_added:>8} {r.samples_added:>8} "
              f"{r.training_loss:>8.4f} {r.accuracy:>9.3f}")

    final_cert = session.preview_volume()
    final_acc = classification_accuracy(final_cert, vol.mask("large"))
    print(f"final whole-volume accuracy: {final_acc:.3f}")
    benchmark.extra_info["final_accuracy"] = round(final_acc, 3)
    benchmark.extra_info["rounds"] = len(history)

    assert final_acc > 0.95
    assert history[-1].accuracy >= history[0].accuracy - 0.02
    # live slice feedback matches whole-volume classification
    plane = session.preview_slice(0, vol.shape[0] // 2)
    assert plane.shape == vol.shape[1:]
