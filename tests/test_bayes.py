"""Tests for repro.core.bayes: Gaussian naive Bayes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bayes import GaussianNaiveBayes


def gaussian_blobs(n=200, seed=0, sep=3.0):
    rng = np.random.default_rng(seed)
    a = rng.normal(loc=0.0, size=(n // 2, 3))
    b = rng.normal(loc=sep, size=(n - n // 2, 3))
    X = np.concatenate([a, b])
    y = np.concatenate([np.zeros(n // 2), np.ones(n - n // 2)])
    return X, y


class TestConstruction:
    def test_var_floor_validated(self):
        with pytest.raises(ValueError):
            GaussianNaiveBayes(var_floor=0.0)

    def test_not_fitted(self):
        nb = GaussianNaiveBayes()
        assert not nb.is_fitted
        with pytest.raises(RuntimeError):
            nb.predict(np.zeros((1, 3)))


class TestFit:
    def test_separable_blobs(self):
        X, y = gaussian_blobs()
        nb = GaussianNaiveBayes().fit(X, y)
        acc = ((nb.predict(X) > 0.5) == (y > 0.5)).mean()
        assert acc > 0.97

    def test_single_class_rejected(self):
        with pytest.raises(ValueError, match="both classes"):
            GaussianNaiveBayes().fit(np.zeros((5, 2)), np.zeros(5))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            GaussianNaiveBayes().fit(np.zeros((3, 2)), np.zeros(4))

    def test_variance_floor_on_constant_feature(self):
        """A painted feature with a single value must not create a
        zero-variance spike (division by zero downstream)."""
        X = np.array([[1.0, 0.0], [1.0, 0.1], [2.0, 5.0], [2.0, 5.1]])
        y = np.array([0.0, 0.0, 1.0, 1.0])
        nb = GaussianNaiveBayes().fit(X, y)
        out = nb.predict(np.array([[1.0, 0.05], [2.0, 5.05]]))
        assert np.isfinite(out).all()
        assert out[0] < 0.5 < out[1]

    def test_priors_toggle(self):
        rng = np.random.default_rng(0)
        # 10:1 imbalance, ambiguous probe exactly between the classes
        X = np.concatenate([rng.normal(0, 1, (200, 1)), rng.normal(4, 1, (20, 1))])
        y = np.concatenate([np.zeros(200), np.ones(20)])
        probe = np.array([[2.0]])
        with_priors = GaussianNaiveBayes(use_priors=True).fit(X, y).predict(probe)[0]
        without = GaussianNaiveBayes(use_priors=False).fit(X, y).predict(probe)[0]
        assert with_priors < without  # priors pull toward the big class


class TestPredict:
    def test_posterior_in_unit_interval(self):
        X, y = gaussian_blobs()
        nb = GaussianNaiveBayes().fit(X, y)
        out = nb.predict(np.random.default_rng(1).normal(size=(50, 3)) * 10)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_extreme_inputs_stable(self):
        X, y = gaussian_blobs()
        nb = GaussianNaiveBayes().fit(X, y)
        out = nb.predict(np.full((2, 3), 1e6))
        assert np.isfinite(out).all()

    def test_chunked_matches(self):
        X, y = gaussian_blobs(150)
        nb = GaussianNaiveBayes().fit(X, y)
        assert np.allclose(nb.predict(X), nb.predict(X, chunk=11))

    def test_log_likelihood_shape(self):
        X, y = gaussian_blobs(80)
        nb = GaussianNaiveBayes().fit(X, y)
        ll = nb.log_likelihood(X[:5])
        assert ll.shape == (5, 2)

    @given(seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_posterior_bounds_property(self, seed):
        X, y = gaussian_blobs(60, seed=seed)
        nb = GaussianNaiveBayes().fit(X, y)
        out = nb.predict(np.random.default_rng(seed).normal(size=(20, 3)) * 100)
        assert np.all((out >= 0) & (out <= 1))
