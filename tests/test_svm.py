"""Tests for repro.core.svm: the SMO support vector machine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.svm import SupportVectorMachine


def circle_problem(n=250, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 2))
    y = ((X[:, 0] - 0.5) ** 2 + (X[:, 1] - 0.5) ** 2 < 0.09).astype(float)
    return X, y


def linear_problem(n=200, seed=1):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 2))
    y = (X[:, 0] + X[:, 1] > 1.0).astype(float)
    return X, y


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            SupportVectorMachine(C=0.0)
        with pytest.raises(ValueError):
            SupportVectorMachine(kernel="poly")
        with pytest.raises(ValueError):
            SupportVectorMachine(gamma=-1.0)

    def test_not_fitted_errors(self):
        svm = SupportVectorMachine()
        assert not svm.is_fitted
        assert svm.n_support == 0
        with pytest.raises(RuntimeError):
            svm.predict(np.zeros((1, 2)))
        with pytest.raises(RuntimeError):
            svm.decision_function(np.zeros((1, 2)))


class TestFit:
    def test_rbf_learns_circle(self):
        X, y = circle_problem()
        svm = SupportVectorMachine(C=5.0, seed=1).fit(X, y)
        acc = ((svm.predict(X) > 0.5) == (y > 0.5)).mean()
        assert acc > 0.95

    def test_linear_kernel_on_separable(self):
        X, y = linear_problem()
        svm = SupportVectorMachine(C=1.0, kernel="linear", seed=1).fit(X, y)
        acc = ((svm.predict(X) > 0.5) == (y > 0.5)).mean()
        assert acc > 0.95

    def test_sparse_support_vectors(self):
        X, y = linear_problem()
        svm = SupportVectorMachine(C=1.0, kernel="linear", seed=1).fit(X, y)
        assert 0 < svm.n_support < len(X)

    def test_single_class_rejected(self):
        X = np.random.default_rng(0).random((10, 2))
        with pytest.raises(ValueError, match="both classes"):
            SupportVectorMachine().fit(X, np.ones(10))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            SupportVectorMachine().fit(np.zeros((3, 2)), np.zeros(4))

    def test_deterministic(self):
        X, y = circle_problem(120)
        a = SupportVectorMachine(seed=7).fit(X, y).predict(X)
        b = SupportVectorMachine(seed=7).fit(X, y).predict(X)
        assert np.allclose(a, b)

    def test_gamma_override(self):
        X, y = circle_problem(120)
        svm = SupportVectorMachine(gamma=5.0, seed=0).fit(X, y)
        assert svm._gamma_value == 5.0


class TestPredict:
    def test_certainty_in_unit_interval(self):
        X, y = circle_problem(150)
        svm = SupportVectorMachine(seed=0).fit(X, y)
        out = svm.predict(np.random.default_rng(1).normal(size=(60, 2)) * 5)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_platt_orientation(self):
        """Higher decision value must mean higher certainty."""
        X, y = linear_problem()
        svm = SupportVectorMachine(kernel="linear", seed=0).fit(X, y)
        probe = np.array([[0.9, 0.9], [0.1, 0.1]])
        p = svm.predict(probe)
        assert p[0] > 0.5 > p[1]

    def test_chunked_predict_matches(self):
        X, y = circle_problem(150)
        svm = SupportVectorMachine(seed=0).fit(X, y)
        assert np.allclose(svm.predict(X), svm.predict(X, chunk=13))

    @given(seed=st.integers(0, 50))
    @settings(max_examples=8, deadline=None)
    def test_certainty_bounds_property(self, seed):
        X, y = linear_problem(80, seed=seed)
        if y.all() or not y.any():
            return
        svm = SupportVectorMachine(kernel="linear", seed=seed).fit(X, y)
        out = svm.predict(np.random.default_rng(seed).normal(size=(30, 2)) * 10)
        assert np.all((out >= 0) & (out <= 1))

    def test_scaling_invariance(self):
        """Standardization makes the fit robust to feature scales."""
        X, y = circle_problem(150)
        Xscaled = X * np.array([1000.0, 0.001])
        svm = SupportVectorMachine(C=5.0, seed=1).fit(Xscaled, y)
        acc = ((svm.predict(Xscaled) > 0.5) == (y > 0.5)).mean()
        assert acc > 0.9
