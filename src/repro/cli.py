"""Command-line interface: the batch half of the paper's workflow.

The interactive half (painting, key frames) happens in a session; the
batch half — generating data, training from key frames, fanning the
trained artifact across a sequence, rendering, tracking — is scriptable,
which is how the paper's cluster deployment runs (Secs. 4.2.3, 8).

Subcommands (``python -m repro.cli <cmd> -h`` for options):

- ``generate`` — build a synthetic dataset and save it as a sequence dir;
- ``info`` — summarize a saved sequence (steps, shape, ranges, masks);
- ``train-iatf`` — train an IATF from key frames (tents auto-placed over a
  named ground-truth mask's value band) and save it as JSON;
- ``apply-iatf`` — regenerate per-step TFs from a saved IATF, report
  feature retention, optionally in parallel;
- ``classify`` — train a data-space classifier from ground-truth masks and
  classify every step (``--fast``/``--exact``, ``--prune``, ``--cache``);
- ``render`` — render a sequence to PPM frames with a box TF or saved IATF;
- ``track`` — fixed-range or adaptive tracking; writes per-step voxel
  counts and the event timeline;
- ``run`` — crash-safe resumable execution of the whole DAG against a
  content-addressed artifact store (``repro run cfg.json --out DIR``,
  ``repro run --resume DIR``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.core.iatf import AdaptiveTransferFunction
from repro.core.pipeline import (
    classify_sequence,
    generate_sequence_tfs,
    render_sequence,
    train_sequence_classifier,
)
from repro.core.tracking import FeatureTracker
from repro.obs import get_metrics
from repro.data import (
    make_argon_sequence,
    make_combustion_sequence,
    make_cosmology_sequence,
    make_fast_vortex_sequence,
    make_swirl_sequence,
    make_vortex_sequence,
)
from repro.features import (
    DescriptorConfig,
    DescriptorIndex,
    DescriptorMatcher,
    cached_index,
    describe_components,
    feature_descriptor,
)
from repro.metrics import feature_retention
from repro.parallel.pool import WorkerPool
from repro.render.camera import Camera
from repro.render.raycast import ALPHA_CUTOFF
from repro.run import (
    ConfigError,
    FollowRunner,
    PipelineRunner,
    RunConfig,
    RunError,
    SimulatedWriter,
)
from repro.transfer.tf1d import TransferFunction1D
from repro.volume.io import load_sequence, save_sequence


def _positive_int(text: str) -> int:
    """argparse type for counts that must be >= 1 (workers, tiles, cells)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {text!r}")
    return value

_GENERATORS = {
    "argon": make_argon_sequence,
    "combustion": make_combustion_sequence,
    "cosmology": make_cosmology_sequence,
    "vortex": make_vortex_sequence,
    "fast-vortex": make_fast_vortex_sequence,
    "swirl": make_swirl_sequence,
}


def _mask_band(volume, mask_name: str, pad: float = 0.02):
    values = volume.data[volume.mask(mask_name)]
    if values.size == 0:
        raise SystemExit(f"mask {mask_name!r} is empty at step {volume.time}")
    lo, hi = np.percentile(values, [2.0, 98.0])
    return float(lo - pad), float(hi + pad)


# --------------------------------------------------------------------- #
# Subcommand implementations
# --------------------------------------------------------------------- #
def cmd_generate(args) -> int:
    """Build a synthetic dataset and save it as a sequence directory."""
    maker = _GENERATORS[args.dataset]
    kwargs = {"seed": args.seed}
    if args.shape:
        kwargs["shape"] = tuple(args.shape)
    if args.times:
        kwargs["times"] = args.times
    sequence = maker(**kwargs)
    save_sequence(sequence, args.out)
    print(f"wrote {len(sequence)} steps of {args.dataset} "
          f"(shape {sequence.shape}) to {args.out}")
    return 0


def cmd_info(args) -> int:
    """Summarize a saved sequence (steps, shape, ranges, masks)."""
    sequence = load_sequence(args.seqdir)
    lo, hi = sequence.value_range
    print(f"sequence: {sequence.name or Path(args.seqdir).name}")
    print(f"steps: {len(sequence)} (ids {sequence.times[0]}..{sequence.times[-1]})")
    print(f"grid: {sequence.shape}")
    print(f"value range: [{lo:.4g}, {hi:.4g}]")
    masks = sorted(sequence[0].masks)
    print(f"ground-truth masks: {masks or 'none'}")
    for vol in sequence:
        vlo, vhi = vol.value_range
        print(f"  step {vol.time}: range [{vlo:.4g}, {vhi:.4g}]"
              + "".join(f" {m}={int(vol.mask(m).sum())}vx" for m in masks))
    return 0


def cmd_train_iatf(args) -> int:
    """Train an IATF from key frames; save it as JSON."""
    key_frames = load_sequence(args.seqdir, times=args.key_frames)
    manifest = json.loads((Path(args.seqdir) / "sequence.json").read_text())
    all_times = [int(t) for t in manifest["times"]]
    # The shared domain must cover the whole sequence; compute it from the
    # manifest's steps without holding them all in core.
    full = load_sequence(args.seqdir)
    domain = full.value_range
    iatf = AdaptiveTransferFunction(
        domain, (all_times[0], all_times[-1]), seed=args.seed,
        committee=args.committee,
    )
    for t in args.key_frames:
        vol = key_frames.at_time(t)
        lo, hi = _mask_band(vol, args.mask)
        tf = TransferFunction1D(domain).add_tent(
            (lo + hi) / 2, (hi - lo) * args.tent_factor, 1.0
        )
        iatf.add_key_frame(vol, tf)
    losses = iatf.train(epochs=args.epochs)
    Path(args.out).parent.mkdir(parents=True, exist_ok=True)
    Path(args.out).write_text(json.dumps(iatf.to_dict()))
    print(f"trained IATF on key frames {args.key_frames} "
          f"(final loss {losses[-1]:.5f}); saved to {args.out}")
    return 0


def cmd_apply_iatf(args) -> int:
    """Regenerate per-step TFs from a saved IATF; report retention."""
    sequence = load_sequence(args.seqdir)
    iatf = AdaptiveTransferFunction.from_dict(json.loads(Path(args.iatf).read_text()))
    backend = "process" if args.workers > 1 else "serial"
    tfs = generate_sequence_tfs(iatf, sequence, workers=args.workers, backend=backend,
                                retry=args.retries, on_error=args.on_error)
    print(f"{'step':>6} {'max opacity':>12}" + (f" {'retention':>10}" if args.mask else ""))
    for vol, tf in zip(sequence, tfs):
        if tf is None:
            print(f"{vol.time:>6} {'FAILED':>12}")
            continue
        line = f"{vol.time:>6} {tf.opacity.max():>12.3f}"
        if args.mask:
            ret = feature_retention(tf.opacity_at(vol.data), vol.mask(args.mask))
            line += f" {ret:>10.3f}"
        print(line)
    if args.out:
        payload = {str(vol.time): tf.to_dict()
                   for vol, tf in zip(sequence, tfs) if tf is not None}
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.out).write_text(json.dumps(payload))
        print(f"per-step TFs saved to {args.out}")
    return 0


def cmd_classify(args) -> int:
    """Train a data-space classifier and classify every step."""
    sequence = load_sequence(args.seqdir)
    try:
        classifier, radius = train_sequence_classifier(
            sequence, mask=args.mask, train_steps=args.train_steps,
            samples=args.samples, radius=args.radius, epochs=args.epochs,
            seed=args.seed)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    backend = "process" if args.workers > 1 else "serial"
    pool = WorkerPool(workers=args.workers) if args.pool and args.workers > 1 else None
    try:
        results = classify_sequence(
            classifier, sequence, workers=args.workers, backend=backend,
            retry=args.retries, on_error=args.on_error, mode=args.mode,
            prune=args.prune, cache=args.cache, pool=pool,
        )
    finally:
        if pool is not None:
            pool.close()
    print(f"shell radius: {radius}  mode: {args.mode}"
          f"{'  prune' if args.prune else ''}{'  cache' if args.cache else ''}")
    print(f"{'step':>6} {'selected':>9} {'retention':>10}")
    outdir = Path(args.out) if args.out else None
    if outdir is not None:
        outdir.mkdir(parents=True, exist_ok=True)
    for vol, cert in zip(sequence, results):
        if cert is None:
            print(f"{vol.time:>6} {'FAILED':>9}")
            continue
        ret = feature_retention(cert, vol.mask(args.mask))
        print(f"{vol.time:>6} {int((cert > 0.5).sum()):>9} {ret:>10.3f}")
        if outdir is not None:
            np.save(outdir / f"certainty_{vol.time:06d}.npy", cert)
    counters = get_metrics().counter_values("classify.")
    if counters:
        print("counters: " + "  ".join(f"{k.removeprefix('classify.')}={v}"
                                       for k, v in sorted(counters.items())))
    if outdir is not None:
        print(f"per-step certainty fields saved to {outdir}")
    return 0


def cmd_render(args) -> int:
    """Render every step to PPM frames (box TF or saved IATF)."""
    sequence = load_sequence(args.seqdir)
    domain = sequence.value_range
    camera = Camera(azimuth=args.azimuth, elevation=args.elevation,
                    width=args.size, height=args.size)
    if args.iatf:
        iatf = AdaptiveTransferFunction.from_dict(json.loads(Path(args.iatf).read_text()))
        tf_for = lambda vol: iatf.generate(vol)  # noqa: E731
    else:
        lo = args.box[0] if args.box else domain[0] + 0.3 * (domain[1] - domain[0])
        hi = args.box[1] if args.box else domain[1]
        static = TransferFunction1D(domain).add_box(lo, hi, args.opacity)
        tf_for = lambda vol: static  # noqa: E731
    outdir = Path(args.out)
    backend = "process" if args.workers > 1 else "serial"
    if not args.fast and (args.tiles is not None or args.ert_alpha != ALPHA_CUTOFF):
        raise SystemExit("--tiles/--ert-alpha tune the fast path; add --fast")
    fast_options = None
    if args.fast:
        fast_options = {"ert_alpha": args.ert_alpha, "cell": args.cell}
        if args.tiles is not None:
            fast_options["tile"] = args.tiles
    pool = WorkerPool(workers=args.workers) if args.pool and args.workers > 1 else None
    try:
        images = render_sequence(
            sequence, [tf_for(vol) for vol in sequence], camera=camera,
            shading=not args.no_shading, workers=args.workers, backend=backend,
            transport=args.transport, retry=args.retries, on_error=args.on_error,
            mode="fast" if args.fast else "exact", fast_options=fast_options,
            cache=args.cache, pool=pool,
        )
    finally:
        if pool is not None:
            pool.close()
    for vol, image in zip(sequence, images):
        if image is None:
            print(f"step {vol.time}: FAILED (skipped)")
            continue
        if args.format == "png":
            path = image.save_png(outdir / f"frame_{vol.time:06d}.png")
        else:
            path = image.save_ppm(outdir / f"frame_{vol.time:06d}.ppm")
        print(f"step {vol.time}: coverage {image.coverage():.3f} -> {path}")
    counters = get_metrics().counter_values("render.frame_cache.")
    if counters:
        print("frame cache: "
              + "  ".join(f"{k.removeprefix('render.frame_cache.')}={v}"
                          for k, v in sorted(counters.items())))
    return 0


def cmd_track(args) -> int:
    """Track a feature (fixed range or adaptive IATF criterion).

    ``--streaming`` consumes the sequence directory one step at a time
    (peak memory independent of the step count); ``--engine bricked``
    grows via brick-decomposed labeling, optionally fanned across
    ``--workers`` processes with ``--bricks``-sized bricks.
    """
    matcher = None
    if args.match is not None:
        matcher = DescriptorMatcher(threshold=args.match,
                                    max_gap=args.match_gap,
                                    max_displacement=args.match_displacement)
    tracker = FeatureTracker(
        opacity_threshold=args.opacity_threshold,
        engine=args.engine,
        brick_shape=tuple(args.bricks) if args.bricks else None,
        workers=args.workers if args.workers > 1 else None,
        matcher=matcher,
    )
    seed = tuple(args.seed_voxel)
    iatf = None
    if args.iatf:
        iatf = AdaptiveTransferFunction.from_dict(json.loads(Path(args.iatf).read_text()))
    elif not args.range:
        raise SystemExit("either --iatf or --range LO HI is required")
    if args.streaming:
        if iatf is not None:
            result = tracker.track_streaming(args.seqdir, seed, iatf=iatf,
                                             refine=not args.no_refine)
        else:
            result = tracker.track_streaming(args.seqdir, seed,
                                             lo=args.range[0], hi=args.range[1],
                                             refine=not args.no_refine)
        print(f"streaming: {len(result.times)} steps, {result.sweeps} sweep(s)")
    else:
        sequence = load_sequence(args.seqdir)
        if iatf is not None:
            result = tracker.track_adaptive(sequence, seed, iatf)
        else:
            result = tracker.track_fixed(sequence, seed, args.range[0], args.range[1])
    print(f"criterion: {result.criterion}")
    print(f"{'step':>6} {'voxels':>8} {'components':>11}")
    for t, n, c in zip(result.times, result.voxel_counts, result.component_counts()):
        print(f"{t:>6} {n:>8} {c:>11}")
    events = [e for e in result.events if e.kind != "continuation"]
    print("events:", [(e.kind, f"{e.time_a}->{e.time_b}") for e in events] or "none")
    counters = get_metrics().counter_values("fastgrow.")
    counters.update(get_metrics().counter_values("track."))
    if counters:
        print("counters: " + "  ".join(f"{k}={v}" for k, v in sorted(counters.items())))
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        np.save(out, result.masks)
        print(f"tracked masks saved to {out}")
    return 0


def cmd_match(args) -> int:
    """Find features similar to a query feature across a whole run.

    Builds (or warm-loads) a :class:`DescriptorIndex` over every
    connected component of the per-step criterion masks, persisted
    through the artifact store under a content-addressed key — rerunning
    over an unchanged sequence hits the stored index instead of
    re-extracting descriptors (``track.match.index.hits``), while any
    voxel change rebuilds it.
    """
    from repro.cache.store import ArtifactStore, derive_key
    from repro.core.pipeline import volume_digest
    from repro.segmentation.components import label_components

    sequence = load_sequence(args.seqdir)
    lo, hi = args.range
    if hi <= lo:
        raise SystemExit(f"--range requires HI > LO, got ({lo}, {hi})")
    config = DescriptorConfig()
    store = ArtifactStore(args.store or Path(args.seqdir) / ".descriptor_index",
                          counter_prefix="match.store")
    key = derive_key(
        "descriptor-index", config.to_dict(),
        {"metric": args.metric, "lo": lo, "hi": hi,
         "min_voxels": args.min_voxels},
        *[volume_digest(vol) for vol in sequence])

    def build() -> DescriptorIndex:
        index = DescriptorIndex(metric=args.metric)
        for vol in sequence:
            crit = (vol.data >= lo) & (vol.data <= hi)
            for cand in describe_components(vol.data, crit, config=config,
                                            min_voxels=args.min_voxels):
                index.add(cand.descriptor, cand.meta(time=int(vol.time)))
        return index

    index, hit = cached_index(store, key, build)
    print(f"index: {len(index)} feature descriptors over {len(sequence)} "
          f"steps ({'warm from store' if hit else 'built and persisted'})")
    if args.query:
        time, z, y, x = args.query
        vol = sequence.at_time(time)
        crit = (vol.data >= lo) & (vol.data <= hi)
        labels, _ = label_components(crit)
        label = int(labels[z, y, x])
        if label == 0:
            raise SystemExit(
                f"query voxel ({z}, {y}, {x}) at step {time} is outside the "
                f"criterion band [{lo}, {hi}]")
        query = feature_descriptor(vol.data, labels == label, config=config)
        print(f"query: step {time} component {label} "
              f"({int((labels == label).sum())} voxels)")
        print(f"{'score':>8} {'step':>6} {'component':>10} {'voxels':>8} centroid")
        for score, meta in index.query(query, k=args.k):
            cz, cy, cx = meta["centroid"]
            print(f"{score:>8.4f} {meta['time']:>6} {meta['label']:>10} "
                  f"{meta['voxels']:>8} ({cz:.1f}, {cy:.1f}, {cx:.1f})")
    counters = get_metrics().counter_values("track.match.")
    if counters:
        print("counters: " + "  ".join(f"{k}={v}"
                                       for k, v in sorted(counters.items())))
    return 0


def cmd_serve(args) -> int:
    """Run the resident pipeline daemon over a directory of sequences."""
    from repro.serve.server import run_server

    return run_server(args.root, host=args.host, port=args.port,
                      workers=args.workers, max_queue=args.max_queue,
                      request_timeout=args.timeout)


def cmd_run(args) -> int:
    """Execute (or resume) a crash-safe pipeline run directory."""
    following = args.follow is not None
    follow_options = {}
    if following:
        follow_options = dict(policy=args.follow_policy, poll=args.follow_poll,
                              idle_timeout=args.follow_idle_timeout,
                              max_steps=args.follow_max_steps)
    try:
        if args.resume:
            if args.config or args.out:
                raise SystemExit("--resume takes the run directory only; "
                                 "the stored config.json drives the run")
            if following:
                runner = FollowRunner.resume(args.resume, workers=args.workers,
                                             **follow_options)
            else:
                runner = PipelineRunner.resume(args.resume, workers=args.workers,
                                               pipelined=args.pipelined)
        else:
            if not args.config or not args.out:
                raise SystemExit("a new run needs a config json and --out DIR "
                                 "(or --resume RUN_DIR to continue one)")
            config = RunConfig.from_json(args.config)
            if following:
                runner = FollowRunner.create(config, args.out,
                                             workers=args.workers,
                                             **follow_options)
            else:
                runner = PipelineRunner.create(config, args.out,
                                               workers=args.workers,
                                               pipelined=args.pipelined)
        if following:
            # --follow DIR watches that directory; bare --follow watches
            # the config's sequence directory as it is being written.
            report = runner.follow(args.follow or None)
        else:
            report = runner.run()
    except (ConfigError, RunError) as exc:
        raise SystemExit(str(exc)) from None
    for stage, status in report.stages.items():
        print(f"stage {stage}: {status}")
    print(f"tasks: {report.executed} executed, {report.skipped} skipped "
          f"({report.artifacts} artifacts in store)")
    if following:
        lags = report.lag_seconds
        p50 = f"{1e3 * float(np.percentile(lags, 50)):.1f}" if lags else "n/a"
        p95 = f"{1e3 * float(np.percentile(lags, 95)):.1f}" if lags else "n/a"
        print(f"follow: {report.steps} steps, {report.dropped} dropped, "
              f"lag p50/p95 ms: {p50}/{p95}")
    print(f"run directory: {report.run_dir}")
    return 0


def cmd_simulate(args) -> int:
    """Replay a saved sequence into a directory at a cadence (a stand-in
    simulation for exercising ``repro run --follow``)."""
    try:
        writer = SimulatedWriter.from_directory(
            args.source, args.out, cadence=args.cadence,
            torn_steps=args.torn or (), torn_hold=args.torn_hold)
    except OSError as exc:
        raise SystemExit(f"cannot read sequence {args.source}: {exc}") from None
    manifest = writer.run()
    print(f"wrote {len(writer.sequence)} steps to {writer.out_dir} "
          f"(manifest: {manifest})")
    return 0


# --------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------- #
def _add_farm_options(p) -> None:
    """Task-farm fault-tolerance flags shared by the fan-out subcommands."""
    p.add_argument("--retries", type=int, default=0,
                   help="per-step retry budget (exponential backoff)")
    p.add_argument("--on-error", choices=["raise", "skip"], default="raise",
                   help="'skip' degrades gracefully: failed steps are "
                        "reported and omitted instead of aborting the run")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Intelligent feature extraction & tracking (SC'05 reproduction)"
    )
    parser.add_argument("--obs-sink", metavar="PATH",
                        help="append JSON-lines trace spans (task farm, "
                             "pipeline, renderer) to this file")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="build a synthetic dataset")
    p.add_argument("dataset", choices=sorted(_GENERATORS))
    p.add_argument("out", help="output sequence directory")
    p.add_argument("--shape", type=int, nargs=3, metavar=("NZ", "NY", "NX"))
    p.add_argument("--times", type=int, nargs="+")
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("info", help="summarize a saved sequence")
    p.add_argument("seqdir")
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("train-iatf", help="train an IATF from key frames")
    p.add_argument("seqdir")
    p.add_argument("--key-frames", type=int, nargs="+", required=True)
    p.add_argument("--mask", required=True,
                   help="ground-truth mask whose value band the key-frame tents cover")
    p.add_argument("--out", required=True, help="output IATF json")
    p.add_argument("--epochs", type=int, default=300)
    p.add_argument("--committee", type=int, default=5)
    p.add_argument("--tent-factor", type=float, default=2.5)
    p.add_argument("--seed", type=int, default=3)
    p.set_defaults(func=cmd_train_iatf)

    p = sub.add_parser("apply-iatf", help="regenerate per-step TFs from a saved IATF")
    p.add_argument("seqdir")
    p.add_argument("iatf", help="IATF json from train-iatf")
    p.add_argument("--mask", help="score retention against this mask")
    p.add_argument("--out", help="save per-step TFs as json")
    p.add_argument("--workers", type=_positive_int, default=1)
    _add_farm_options(p)
    p.set_defaults(func=cmd_apply_iatf)

    p = sub.add_parser("classify", help="train a data-space classifier "
                                        "and classify every step")
    p.add_argument("seqdir")
    p.add_argument("--mask", required=True,
                   help="ground-truth mask providing the training examples")
    p.add_argument("--train-steps", type=int, nargs="+", required=True,
                   help="step ids whose masks seed the training set")
    p.add_argument("--samples", type=int, default=150,
                   help="positive/negative examples sampled per training step")
    p.add_argument("--radius", type=int, default=0,
                   help="shell radius (0 = derive from the first training mask)")
    p.add_argument("--epochs", type=int, default=300)
    p.add_argument("--seed", type=int, default=11)
    mode = p.add_mutually_exclusive_group()
    mode.add_argument("--fast", dest="mode", action="store_const", const="fast",
                      default="fast",
                      help="padded-view fused float32 inference (default)")
    mode.add_argument("--exact", dest="mode", action="store_const", const="exact",
                      help="reference float64 gather path")
    p.add_argument("--prune", action="store_true",
                   help="skip blocks whose certified certainty upper bound "
                        "is below threshold (fast path only)")
    p.add_argument("--cache", nargs="?", const="shared", default=None,
                   metavar="DIR",
                   help="temporal-coherence brick cache across steps (fast "
                        "path only), backed by the shared on-disk store so "
                        "it composes with --workers; DIR overrides the "
                        "default cache root (~/.cache/repro/shared)")
    p.add_argument("--out", help="directory for per-step certainty .npy files")
    p.add_argument("--workers", type=_positive_int, default=1)
    p.add_argument("--pool", action="store_true",
                   help="dispatch onto a resident worker pool: the trained "
                        "network is broadcast to each worker once instead "
                        "of riding in every task payload")
    _add_farm_options(p)
    p.set_defaults(func=cmd_classify)

    p = sub.add_parser("render", help="render a sequence to image frames")
    p.add_argument("seqdir")
    p.add_argument("--out", required=True)
    p.add_argument("--iatf", help="saved IATF json (default: static box TF)")
    p.add_argument("--box", type=float, nargs=2, metavar=("LO", "HI"))
    p.add_argument("--opacity", type=float, default=0.8)
    p.add_argument("--size", type=int, default=160)
    p.add_argument("--azimuth", type=float, default=30.0)
    p.add_argument("--elevation", type=float, default=20.0)
    p.add_argument("--no-shading", action="store_true")
    p.add_argument("--workers", type=_positive_int, default=1)
    p.add_argument("--transport", choices=["auto", "pickle", "shm"], default="auto",
                   help="how volume payloads reach pool workers")
    p.add_argument("--fast", action="store_true",
                   help="tile-decomposed renderer with empty-space skipping "
                        "and early ray termination (bit-identical to the "
                        "reference at the default --ert-alpha)")
    p.add_argument("--tiles", type=_positive_int, metavar="EDGE",
                   help="fast-path tile edge in pixels (default: whole image "
                        "in-process, 64 when fanning out)")
    p.add_argument("--ert-alpha", type=float, default=ALPHA_CUTOFF,
                   help="fast-path early-termination opacity threshold; "
                        "below the default it trades a bounded compositing "
                        "tail for speed")
    p.add_argument("--cell", type=_positive_int, default=8,
                   help="fast-path macro-cell edge in voxels")
    p.add_argument("--cache", nargs="?", const="shared", default=None,
                   metavar="DIR",
                   help="reuse frames whose content digest repeats across "
                        "steps, backed by the shared on-disk store so it "
                        "composes with --workers; DIR overrides the default "
                        "cache root (~/.cache/repro/shared)")
    p.add_argument("--format", choices=["ppm", "png"], default="ppm",
                   help="frame file format")
    p.add_argument("--pool", action="store_true",
                   help="dispatch onto a resident worker pool: the camera "
                        "(and a shared TF) are broadcast to each worker "
                        "once instead of riding in every task payload")
    _add_farm_options(p)
    p.set_defaults(func=cmd_render)

    p = sub.add_parser("track", help="track a feature through a sequence")
    p.add_argument("seqdir")
    p.add_argument("--seed-voxel", type=int, nargs=4, required=True,
                   metavar=("STEP", "Z", "Y", "X"))
    p.add_argument("--range", type=float, nargs=2, metavar=("LO", "HI"))
    p.add_argument("--iatf", help="saved IATF json for adaptive tracking")
    p.add_argument("--opacity-threshold", type=float, default=0.1)
    p.add_argument("--streaming", action="store_true",
                   help="consume the sequence one step at a time (peak "
                        "memory independent of the step count)")
    p.add_argument("--no-refine", action="store_true",
                   help="skip the streaming path's forward/backward "
                        "refinement sweeps (single forward pass)")
    p.add_argument("--engine", choices=["scipy", "bricked"], default="scipy",
                   help="growth engine: serial scipy propagation, or "
                        "brick-decomposed labeling with union-find merge")
    p.add_argument("--bricks", type=int, nargs=3, metavar=("BZ", "BY", "BX"),
                   help="spatial brick interior for --engine bricked")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="process-parallel per-brick labeling (bricked engine)")
    p.add_argument("--match", type=float, nargs="?", const=0.7, default=None,
                   metavar="THRESHOLD",
                   help="descriptor-matching fallback: when a step's growth "
                        "finds zero overlap (fast motion, occlusion), match "
                        "candidate components against the lost feature's "
                        "descriptor and re-seed from the best one above "
                        "THRESHOLD cosine similarity (default 0.7); "
                        "lost/reacquired lineage shows in the events line")
    p.add_argument("--match-gap", type=_positive_int, default=4,
                   help="steps a feature may stay lost and still be "
                        "reacquired by --match")
    p.add_argument("--match-displacement", type=float, default=None,
                   metavar="VOXELS",
                   help="centroid travel allowed per elapsed step before a "
                        "--match candidate is rejected outright")
    p.add_argument("--out", help="save tracked masks as .npy")
    p.set_defaults(func=cmd_track)

    p = sub.add_parser("match", help="find features similar to a query "
                                     "feature across a run (persisted "
                                     "descriptor index)")
    p.add_argument("seqdir")
    p.add_argument("--range", type=float, nargs=2, metavar=("LO", "HI"),
                   required=True,
                   help="criterion band whose connected components are the "
                        "indexed features")
    p.add_argument("--query", type=int, nargs=4,
                   metavar=("STEP", "Z", "Y", "X"),
                   help="describe the component containing this voxel "
                        "(step id) and print its nearest neighbours")
    p.add_argument("--k", type=_positive_int, default=5,
                   help="neighbours to print")
    p.add_argument("--metric", choices=["cosine", "l2"], default="cosine")
    p.add_argument("--min-voxels", type=_positive_int, default=8,
                   help="skip components smaller than this")
    p.add_argument("--store", metavar="DIR",
                   help="artifact store for the persisted index "
                        "(default: SEQDIR/.descriptor_index)")
    p.set_defaults(func=cmd_match)

    p = sub.add_parser("serve", help="resident pipeline daemon over stored "
                                     "sequences (classify/track/render/run "
                                     "over HTTP with request coalescing)")
    p.add_argument("--root", required=True,
                   help="directory whose subdirectories are stored sequences "
                        "(each with a sequence.json); also hosts the "
                        "daemon's cache, store, and run directories")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8737,
                   help="listen port (0 picks a free one; printed at startup)")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="resident worker-pool size shared by every request")
    p.add_argument("--max-queue", type=_positive_int, default=32,
                   help="distinct in-flight computes before new keys get 429 "
                        "(coalesced joins are never bounced)")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="per-request compute timeout in seconds (504; "
                        "override per request with 'timeout_s')")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("run", help="crash-safe resumable pipeline run")
    p.add_argument("config", nargs="?",
                   help="run config json (see docs/reproduction_notes.md §13)")
    p.add_argument("--out", help="run directory for a new run")
    p.add_argument("--resume", metavar="RUN_DIR",
                   help="continue an interrupted run directory; completed "
                        "artifacts are verified and skipped")
    p.add_argument("--workers", type=_positive_int, default=None,
                   help="override the config's worker count for this "
                        "invocation (a pure throughput knob: not written "
                        "to config.json, outputs stay byte-identical)")
    p.add_argument("--pipelined", action="store_true",
                   help="dataflow scheduling: per-step classify→tf→render "
                        "chains overlap across steps on one resident "
                        "worker pool (track keeps its global barrier); "
                        "outputs are byte-identical to the barrier walk")
    p.add_argument("--follow", nargs="?", const="", default=None,
                   metavar="DIR",
                   help="in-situ online mode: watch DIR (default: the "
                        "config's sequence directory) while a simulation "
                        "is still writing it, processing steps as they "
                        "arrive; finalized outputs are byte-identical to "
                        "an offline run over the completed sequence")
    p.add_argument("--follow-policy", choices=["queue", "skip", "block"],
                   default="queue",
                   help="backpressure when the writer outpaces the "
                        "follower: process every step in order (queue/"
                        "block) or jump to the newest and backfill the "
                        "rest at finalize (skip)")
    p.add_argument("--follow-poll", type=float, default=0.05, metavar="S",
                   help="seconds between directory scans while idle")
    p.add_argument("--follow-idle-timeout", type=float, default=None,
                   metavar="S",
                   help="give up (resumably) after S seconds with no new "
                        "step and no completion manifest")
    p.add_argument("--follow-max-steps", type=_positive_int, default=None,
                   metavar="N",
                   help="finalize after N distinct steps (bounded smoke "
                        "runs against endless writers)")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("simulate", help="replay a saved sequence to a "
                       "directory at a cadence (stand-in simulation for "
                       "follow mode)")
    p.add_argument("source", help="completed sequence directory to replay")
    p.add_argument("out", help="directory the stand-in simulation writes "
                   "(what a follower watches)")
    p.add_argument("--cadence", type=float, default=0.1, metavar="S",
                   help="seconds between emitted steps")
    p.add_argument("--torn", type=int, nargs="+", metavar="STEP",
                   help="step indices first exposed as torn half-written "
                        "bricks before completing properly")
    p.add_argument("--torn-hold", type=float, default=0.2, metavar="S",
                   help="how long a torn state stays visible")
    p.set_defaults(func=cmd_simulate)
    return parser


def main(argv=None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.obs_sink:
        get_metrics().configure_sink(args.obs_sink)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
