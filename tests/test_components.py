"""Tests for repro.segmentation.components: labeling and attributes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.segmentation import feature_attributes, label_components


def three_blobs():
    mask = np.zeros((12, 12, 12), dtype=bool)
    mask[0:3, 0:3, 0:3] = True  # 27 voxels
    mask[5:7, 5:7, 5:7] = True  # 8 voxels
    mask[10, 10, 10] = True  # 1 voxel
    return mask


class TestLabelComponents:
    @pytest.mark.parametrize("backend", ["scipy", "bfs"])
    def test_counts_components(self, backend):
        labels, n = label_components(three_blobs(), backend=backend)
        assert n == 3
        assert labels.max() == 3
        assert labels[three_blobs()].min() >= 1

    @pytest.mark.parametrize("backend", ["scipy", "bfs"])
    def test_empty_mask(self, backend):
        labels, n = label_components(np.zeros((4, 4, 4), dtype=bool), backend=backend)
        assert n == 0
        assert not labels.any()

    def test_backend_partition_agreement(self):
        """Label ids may differ between backends but the partition must match."""
        rng = np.random.default_rng(3)
        mask = rng.random((10, 10, 10)) > 0.6
        la, na = label_components(mask, backend="scipy")
        lb, nb = label_components(mask, backend="bfs")
        assert na == nb
        # same-component in a  <=>  same-component in b
        for lab in range(1, na + 1):
            ids_b = np.unique(lb[la == lab])
            assert len(ids_b) == 1

    def test_connectivity_matters(self):
        mask = np.zeros((3, 3, 3), dtype=bool)
        mask[0, 0, 0] = True
        mask[1, 1, 1] = True
        _, n_face = label_components(mask, connectivity=1)
        _, n_full = label_components(mask, connectivity=3)
        assert n_face == 2
        assert n_full == 1

    def test_4d_labeling(self):
        stack = np.zeros((3, 4, 4, 4), dtype=bool)
        stack[0, 0, 0, 0] = True
        stack[1, 0, 0, 0] = True  # temporally adjacent -> same 4D component
        stack[2, 3, 3, 3] = True
        _, n = label_components(stack, connectivity=1)
        assert n == 2

    def test_bad_backend(self):
        with pytest.raises(ValueError):
            label_components(three_blobs(), backend="quantum")

    @given(seed=st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_label_count_matches_bfs_property(self, seed):
        mask = np.random.default_rng(seed).random((7, 7, 7)) > 0.5
        _, na = label_components(mask, backend="scipy")
        _, nb = label_components(mask, backend="bfs")
        assert na == nb


class TestFeatureAttributes:
    def test_sizes(self):
        labels, n = label_components(three_blobs())
        attrs = feature_attributes(labels, n)
        sizes = sorted(a.voxels for a in attrs)
        assert sizes == [1, 8, 27]

    def test_centroid_of_box(self):
        mask = np.zeros((8, 8, 8), dtype=bool)
        mask[2:4, 2:4, 2:4] = True
        labels, n = label_components(mask)
        (attr,) = feature_attributes(labels, n)
        assert attr.centroid == (2.5, 2.5, 2.5)

    def test_bbox(self):
        mask = np.zeros((8, 8, 8), dtype=bool)
        mask[1:5, 2:6, 3:7] = True
        labels, n = label_components(mask)
        (attr,) = feature_attributes(labels, n)
        assert attr.bbox_min == (1, 2, 3)
        assert attr.bbox_max == (4, 5, 6)
        assert attr.extent == (4, 4, 4)

    def test_mass_with_data(self):
        mask = np.zeros((4, 4, 4), dtype=bool)
        mask[0, 0, :2] = True
        data = np.full((4, 4, 4), 2.5)
        labels, n = label_components(mask)
        (attr,) = feature_attributes(labels, n, data=data)
        assert attr.mass == pytest.approx(5.0)

    def test_mass_without_data_zero(self):
        labels, n = label_components(three_blobs())
        for attr in feature_attributes(labels, n):
            assert attr.mass == 0.0

    def test_data_shape_mismatch(self):
        labels, n = label_components(three_blobs())
        with pytest.raises(ValueError):
            feature_attributes(labels, n, data=np.zeros((2, 2, 2)))

    def test_empty(self):
        assert feature_attributes(np.zeros((3, 3, 3), dtype=np.int32), 0) == []

    def test_voxel_conservation(self):
        labels, n = label_components(three_blobs())
        attrs = feature_attributes(labels, n)
        assert sum(a.voxels for a in attrs) == three_blobs().sum()
