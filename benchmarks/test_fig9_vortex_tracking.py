"""Fig. 9 — tracking a turbulent vortex that moves, deforms, and splits.

Paper claim: six frames between steps 50 and 74 show that *"the tracked
vortex moves and changes its shape through time and splits near the end"*;
the tracked feature renders in red over the context volume at ~2 fps.

The bench times the 4D region growing (the tracking operation itself);
the frame renderer's fps is reported alongside for the Sec. 7 comparison.
"""

import numpy as np
from _helpers import seed_on_mask

from repro.core import FeatureTracker
from repro.render import Camera, render_tracked
from repro.transfer import TransferFunction1D, grayscale_colormap
from repro.utils.timing import Timer


def test_fig9_vortex_tracking(vortex, benchmark):
    seed = seed_on_mask(vortex, "vortex")
    tracker = FeatureTracker()

    result = benchmark(lambda: tracker.track_fixed(vortex, seed, lo=0.5, hi=10.0))

    counts = result.voxel_counts
    components = result.component_counts()
    events = [e for e in result.events if e.kind != "continuation"]

    print("\nFig. 9 tracking timeline:")
    print(f"{'step':>6} {'voxels':>8} {'components':>11}")
    for t, n, c in zip(result.times, counts, components):
        print(f"{t:>6} {n:>8} {c:>11}")
    print("events:", [(e.kind, f"{e.time_a}->{e.time_b}") for e in events])

    # Movement: centroid advances along x over the window.
    first = np.argwhere(result.masks[0]).mean(axis=0)
    last = np.argwhere(result.masks[-1]).mean(axis=0)
    displacement = float(last[2] - first[2])

    # Highlight rendering speed (the "about 4 frames per second" pass).
    context = TransferFunction1D(
        vortex.value_range, colormap=grayscale_colormap()
    ).add_box(0.25, vortex.value_range[1], 0.08)
    camera = Camera(width=128, height=128)
    with Timer() as timer:
        render_tracked(vortex[0], result.masks[0], context, camera=camera)
    fps = timer.fps

    print(f"vortex centroid x-displacement: {displacement:.1f} voxels")
    print(f"highlight render: {fps:.1f} fps at 128x128 (paper: ~2 fps at 512x512 on GPU)")
    benchmark.extra_info["split_events"] = len([e for e in events if e.kind == "split"])
    benchmark.extra_info["highlight_fps"] = round(fps, 2)

    # The figure's storyline:
    assert all(c > 0 for c in counts), "feature tracked at every step"
    assert components[0] == 1 and components[-1] == 2, "splits near the end"
    assert sum(1 for e in events if e.kind == "split") == 1
    assert displacement > 5.0, "the vortex moves"
