"""Tests for repro.core.hmm: temporal smoothing of certainty stacks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hmm import TemporalHMM, smooth_certainty_stack


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            TemporalHMM(persistence=0.4)
        with pytest.raises(ValueError):
            TemporalHMM(persistence=1.0)
        with pytest.raises(ValueError):
            TemporalHMM(prior=0.0)
        with pytest.raises(ValueError):
            TemporalHMM(emission_stds=(0.2, 0.0))

    def test_transition_rows_sum_to_one(self):
        hmm = TemporalHMM(persistence=0.8)
        assert np.allclose(hmm.transition.sum(axis=1), 1.0)


class TestSmooth:
    def test_posterior_in_unit_interval(self):
        rng = np.random.default_rng(0)
        certs = rng.random((6, 4, 4, 4))
        post = TemporalHMM().smooth(certs)
        assert post.shape == certs.shape
        assert post.min() >= 0.0 and post.max() <= 1.0

    def test_bridges_single_step_dropout(self):
        """A transient dropout in an otherwise-confident sequence gets
        bridged — the property that keeps 4D region growing connected."""
        certs = np.array([0.9, 0.9, 0.1, 0.9, 0.9])[:, None]
        post = TemporalHMM(persistence=0.9).smooth(certs)
        assert post[2, 0] > 0.5  # raw 0.1 smoothed above threshold

    def test_sustained_absence_not_bridged(self):
        certs = np.array([0.9, 0.1, 0.1, 0.1, 0.1])[:, None]
        post = TemporalHMM(persistence=0.9).smooth(certs)
        assert post[-1, 0] < 0.5

    def test_no_smoothing_at_half_persistence(self):
        """persistence=0.5 makes steps independent: the posterior is a
        monotone function of the per-step certainty only."""
        certs = np.array([0.9, 0.1, 0.9])[:, None]
        post = TemporalHMM(persistence=0.5).smooth(certs)
        assert post[0, 0] > 0.5 > post[1, 0]

    def test_steady_sequences_unchanged_in_decision(self):
        certs = np.full((5, 3, 3), 0.9)
        post = TemporalHMM().smooth(certs)
        assert (post > 0.5).all()
        certs = np.full((5, 3, 3), 0.1)
        post = TemporalHMM().smooth(certs)
        assert (post < 0.5).all()

    def test_single_step(self):
        post = TemporalHMM().smooth(np.array([[0.9]]))
        assert post.shape == (1, 1)
        assert post[0, 0] > 0.5

    def test_voxels_independent(self):
        """Each voxel's chain must not leak into its neighbours'."""
        certs = np.zeros((4, 2)) + 0.1
        certs[:, 1] = 0.9
        post = TemporalHMM().smooth(certs)
        assert (post[:, 0] < 0.5).all()
        assert (post[:, 1] > 0.5).all()

    @given(seed=st.integers(0, 300), persistence=st.floats(0.5, 0.99))
    @settings(max_examples=20, deadline=None)
    def test_posterior_bounds_property(self, seed, persistence):
        certs = np.random.default_rng(seed).random((5, 3, 3))
        post = TemporalHMM(persistence=persistence).smooth(certs)
        assert np.all((post >= 0) & (post <= 1))
        assert np.isfinite(post).all()


class TestViterbi:
    def test_matches_posterior_on_clear_sequences(self):
        certs = np.array([0.9, 0.9, 0.1, 0.1])[:, None]
        hmm = TemporalHMM(persistence=0.7)
        path = hmm.viterbi(certs)
        assert path[0, 0] and path[1, 0]
        assert not path[2, 0] and not path[3, 0]

    def test_bridges_dropout_like_smooth(self):
        certs = np.array([0.9, 0.9, 0.2, 0.9, 0.9])[:, None]
        path = TemporalHMM(persistence=0.92).viterbi(certs)
        assert path[2, 0]

    def test_shape_and_dtype(self):
        certs = np.random.default_rng(1).random((4, 3, 5))
        path = TemporalHMM().viterbi(certs)
        assert path.shape == certs.shape
        assert path.dtype == bool


class TestPipelineIntegration:
    def test_flicker_repair_restores_tracking(self, swirl_small):
        """Inject a one-step classifier dropout; raw criteria break 4D
        region growing, HMM-smoothed criteria restore it.

        Uses the slowly-drifting swirl feature: per-voxel bridging needs
        the feature to overlap itself across the gap (a feature that moves
        a full diameter per step cannot be repaired voxelwise — that's the
        prediction-verification tracker's regime instead)."""
        from repro.segmentation import grow_4d

        certs = np.stack([
            np.where(v.mask("feature"), 0.9, 0.1).astype(np.float64)
            for v in swirl_small
        ])
        assert (certs[2] > 0.5).__and__(certs[4] > 0.5).sum() > 10  # premise
        broken = certs.copy()
        broken[3] = 0.1  # the classifier fails completely at one step
        coords = np.argwhere(swirl_small[0].mask("feature"))
        seed = (0, *map(int, coords[len(coords) // 2]))

        raw_grown = grow_4d(broken > 0.5, [seed])
        assert not raw_grown[-1].any()  # tracking breaks at the gap

        smoothed = smooth_certainty_stack(broken, persistence=0.9)
        fixed_grown = grow_4d(smoothed > 0.5, [seed])
        assert fixed_grown[-1].any()  # the bridge restores continuity
