"""Run configuration: one JSON document describes one pipeline run.

A run executes a subset of the classify → track → TF-generation → render
DAG over a saved :class:`~repro.volume.grid.VolumeSequence` directory.
The config is the *identity* of the run: its canonical fingerprint is
recorded in the run manifest, and ``repro run --resume`` refuses to
continue a run directory whose stored config hashes differently — the
resume guarantee ("same bytes as an uninterrupted run") only holds when
the work being resumed is the same work.

Execution knobs that cannot change any produced byte (``workers``,
``name``) are excluded from the fingerprint, so a run may be resumed
with a different fan-out.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.parallel.bricking import content_digest

#: The full DAG in execution order; ``stages`` must be a subset of this.
STAGE_ORDER = ("classify", "track", "tfs", "render")

_STAGE_DEFAULTS: dict[str, dict] = {
    "classify": {
        "mask": None,          # ground-truth mask supplying training examples (required)
        "train_steps": None,   # step ids painted for training (default: first step)
        "samples": 100,        # positive/negative examples per training step
        "radius": 0,           # shell radius; 0 derives it from the first training mask
        "directions": "faces+corners",
        "hidden": 16,
        "epochs": 150,
        "seed": 11,
        "mode": "auto",        # exact | fast | auto (forwarded to classify())
        "threshold": 0.5,      # certainty cut handed to the track stage
    },
    "track": {
        "criterion": "classify",  # "classify" (certainty masks) or "fixed" (value range)
        "seed_voxel": None,       # (step_index, z, y, x) — required
        "lo": None,               # fixed-criterion value band
        "hi": None,
        "connectivity": 1,
        "engine": "scipy",
    },
    "tfs": {
        "kind": "box",    # "box" (static band) or "iatf" (saved IATF json)
        "lo": None,       # box band; defaults derived from the sequence range
        "hi": None,
        "opacity": 0.8,
        "iatf": None,     # path to a train-iatf output (kind="iatf")
        "domain": None,   # explicit TF [lo, hi] domain (default: the full
                          # sequence's value range; follow mode requires it
                          # pinned — the range is unknowable mid-simulation)
    },
    "render": {
        "size": 96,
        "azimuth": 30.0,
        "elevation": 20.0,
        "step": 1.0,
        "shading": True,
        "mode": "exact",  # "exact" or "fast" (tile/ESS/ERT renderer)
        "fast_options": {},
        "export": None,   # optionally also write frames: "ppm" | "png"
    },
}


class ConfigError(ValueError):
    """The run config is malformed or internally inconsistent."""


def canonical_json(obj) -> str:
    """Deterministic JSON form (sorted keys, no whitespace) for hashing."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _merged(stage: str, overrides: dict) -> dict:
    defaults = _STAGE_DEFAULTS[stage]
    unknown = set(overrides) - set(defaults)
    if unknown:
        raise ConfigError(
            f"unknown {stage!r} option(s) {sorted(unknown)}; "
            f"known: {sorted(defaults)}"
        )
    return {**defaults, **overrides}


@dataclass(frozen=True)
class RunConfig:
    """Validated, default-filled description of one pipeline run."""

    sequence: str
    stages: tuple[str, ...]
    classify: dict = field(default_factory=dict)
    track: dict = field(default_factory=dict)
    tfs: dict = field(default_factory=dict)
    render: dict = field(default_factory=dict)
    workers: int = 1
    name: str = ""

    @classmethod
    def from_dict(cls, payload: dict) -> "RunConfig":
        """Build and validate a config from a parsed JSON document."""
        known = {"sequence", "stages", "classify", "track", "tfs", "render",
                 "workers", "name"}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(f"unknown config key(s) {sorted(unknown)}; known: {sorted(known)}")
        if "sequence" not in payload:
            raise ConfigError("config requires 'sequence': a saved sequence directory")
        stages = payload.get("stages")
        if not stages:
            raise ConfigError(f"config requires 'stages': a non-empty subset of {STAGE_ORDER}")
        bad = [s for s in stages if s not in STAGE_ORDER]
        if bad:
            raise ConfigError(f"unknown stage(s) {bad}; known: {list(STAGE_ORDER)}")
        if len(set(stages)) != len(stages):
            raise ConfigError(f"duplicate stages in {stages}")
        # Stages always execute in DAG order regardless of listing order.
        stages = tuple(s for s in STAGE_ORDER if s in stages)
        workers = int(payload.get("workers", 1))
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        config = cls(
            sequence=str(payload["sequence"]),
            stages=stages,
            classify=_merged("classify", dict(payload.get("classify", {}))),
            track=_merged("track", dict(payload.get("track", {}))),
            tfs=_merged("tfs", dict(payload.get("tfs", {}))),
            render=_merged("render", dict(payload.get("render", {}))),
            workers=workers,
            name=str(payload.get("name", "")),
        )
        config.validate()
        return config

    @classmethod
    def from_json(cls, path) -> "RunConfig":
        """Load and validate a config file."""
        try:
            payload = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise ConfigError(f"config {path} is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise ConfigError(f"config {path} must hold a JSON object")
        return cls.from_dict(payload)

    def validate(self) -> None:
        """Cross-stage dependency and per-stage requirement checks."""
        if "classify" in self.stages and self.classify["mask"] is None:
            raise ConfigError("classify stage requires 'mask' (ground-truth mask name)")
        if "track" in self.stages:
            criterion = self.track["criterion"]
            if criterion not in ("classify", "fixed"):
                raise ConfigError(
                    f"track criterion must be 'classify' or 'fixed', got {criterion!r}")
            if criterion == "classify" and "classify" not in self.stages:
                raise ConfigError(
                    "track criterion 'classify' needs the classify stage in 'stages'")
            if criterion == "fixed" and (self.track["lo"] is None or self.track["hi"] is None):
                raise ConfigError("track criterion 'fixed' requires 'lo' and 'hi'")
            seed = self.track["seed_voxel"]
            if seed is None or len(seed) != 4:
                raise ConfigError("track requires 'seed_voxel': [step_index, z, y, x]")
        if "tfs" in self.stages:
            kind = self.tfs["kind"]
            if kind not in ("box", "iatf"):
                raise ConfigError(f"tfs kind must be 'box' or 'iatf', got {kind!r}")
            if kind == "iatf" and not self.tfs["iatf"]:
                raise ConfigError("tfs kind 'iatf' requires 'iatf': path to a saved IATF")
            domain = self.tfs["domain"]
            if domain is not None:
                if len(domain) != 2 or not all(
                        isinstance(v, (int, float)) for v in domain):
                    raise ConfigError(
                        f"tfs domain must be [lo, hi] numbers, got {domain!r}")
                if not float(domain[1]) > float(domain[0]):
                    raise ConfigError(
                        f"tfs domain requires hi > lo, got {list(domain)}")
        if "render" in self.stages:
            if "tfs" not in self.stages:
                raise ConfigError("render stage needs the tfs stage in 'stages'")
            if self.render["mode"] not in ("exact", "fast"):
                raise ConfigError(
                    f"render mode must be 'exact' or 'fast', got {self.render['mode']!r}")
            if self.render["export"] not in (None, "ppm", "png"):
                raise ConfigError(
                    f"render export must be null, 'ppm' or 'png', got {self.render['export']!r}")

    def to_dict(self) -> dict:
        """Full JSON-serializable form (defaults filled in)."""
        return {
            "sequence": self.sequence,
            "stages": list(self.stages),
            "classify": dict(self.classify),
            "track": dict(self.track),
            "tfs": dict(self.tfs),
            "render": dict(self.render),
            "workers": self.workers,
            "name": self.name,
        }

    def identity_dict(self) -> dict:
        """The fingerprinted subset: everything that can change output bytes."""
        payload = self.to_dict()
        payload.pop("workers")  # pure throughput knob (schedule-independent farm)
        payload.pop("name")     # a label, not an input
        return payload

    def fingerprint(self) -> str:
        """blake2b digest of the canonical identity form."""
        encoded = canonical_json(self.identity_dict()).encode()
        return content_digest(np.frombuffer(encoded, dtype=np.uint8))
