"""Lightweight observability: counters, timers, trace spans, JSONL sink.

See :mod:`repro.obs.metrics` for the design.  Typical use::

    from repro.obs import get_metrics

    metrics = get_metrics()
    metrics.counter("executor.tasks").inc()
    with metrics.span("classify_sequence", steps=len(sequence)):
        ...

Set ``REPRO_OBS_SINK=/path/trace.jsonl`` (or call
``get_metrics().configure_sink(path)``) to stream span records to disk.
"""

from repro.obs.metrics import Counter, MetricsRegistry, TimerStat, get_metrics

__all__ = ["Counter", "MetricsRegistry", "TimerStat", "get_metrics"]
