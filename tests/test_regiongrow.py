"""Tests for repro.segmentation.regiongrow: 3D/4D growth invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.segmentation import grow_4d, grow_region


def two_blob_criterion():
    """Two disconnected boxes in a 12³ grid."""
    crit = np.zeros((12, 12, 12), dtype=bool)
    crit[1:5, 1:5, 1:5] = True
    crit[7:11, 7:11, 7:11] = True
    return crit


class TestGrowRegion:
    @pytest.mark.parametrize("backend", ["scipy", "frontier"])
    def test_grows_only_seeded_component(self, backend):
        crit = two_blob_criterion()
        grown = grow_region(crit, [(2, 2, 2)], backend=backend)
        assert grown[1:5, 1:5, 1:5].all()
        assert not grown[7:11, 7:11, 7:11].any()

    @pytest.mark.parametrize("backend", ["scipy", "frontier"])
    def test_result_subset_of_criterion(self, backend):
        crit = two_blob_criterion()
        grown = grow_region(crit, [(2, 2, 2)], backend=backend)
        assert not (grown & ~crit).any()

    @pytest.mark.parametrize("backend", ["scipy", "frontier"])
    def test_seed_outside_criterion_empty(self, backend):
        crit = two_blob_criterion()
        grown = grow_region(crit, [(6, 6, 6)], backend=backend)
        assert not grown.any()

    def test_seed_mask_form(self):
        crit = two_blob_criterion()
        seed_mask = np.zeros_like(crit)
        seed_mask[2, 2, 2] = True
        grown = grow_region(crit, seed_mask)
        assert grown[1:5, 1:5, 1:5].all()

    def test_multiple_seeds_union(self):
        crit = two_blob_criterion()
        grown = grow_region(crit, [(2, 2, 2), (8, 8, 8)])
        assert grown.sum() == crit.sum()

    def test_empty_seed_list(self):
        crit = two_blob_criterion()
        grown = grow_region(crit, np.empty((0, 3), dtype=np.int64))
        assert not grown.any()

    def test_diagonal_needs_full_connectivity(self):
        crit = np.zeros((4, 4, 4), dtype=bool)
        crit[0, 0, 0] = True
        crit[1, 1, 1] = True
        face = grow_region(crit, [(0, 0, 0)], connectivity=1)
        full = grow_region(crit, [(0, 0, 0)], connectivity=3)
        assert face.sum() == 1
        assert full.sum() == 2

    def test_backend_agreement_random(self):
        rng = np.random.default_rng(0)
        crit = rng.random((10, 10, 10)) > 0.45
        seeds = [(5, 5, 5)]
        a = grow_region(crit, seeds, backend="scipy")
        b = grow_region(crit, seeds, backend="frontier")
        assert np.array_equal(a, b)

    @given(seed=st.integers(0, 1000), p=st.floats(0.2, 0.8))
    @settings(max_examples=20, deadline=None)
    def test_invariants_property(self, seed, p):
        """grown ⊆ criterion; grown ⊇ seeds∩criterion; idempotent."""
        rng = np.random.default_rng(seed)
        crit = rng.random((8, 8, 8)) < p
        seed_pt = tuple(int(c) for c in rng.integers(0, 8, size=3))
        grown = grow_region(crit, [seed_pt])
        assert not (grown & ~crit).any()
        if crit[seed_pt]:
            assert grown[seed_pt]
        regrown = grow_region(crit, grown)
        assert np.array_equal(grown, regrown)

    def test_bad_backend(self):
        with pytest.raises(ValueError):
            grow_region(two_blob_criterion(), [(2, 2, 2)], backend="gpu")

    def test_bad_connectivity(self):
        with pytest.raises(ValueError):
            grow_region(two_blob_criterion(), [(2, 2, 2)], connectivity=0)

    def test_seed_out_of_range(self):
        with pytest.raises(IndexError):
            grow_region(two_blob_criterion(), [(50, 0, 0)])

    def test_seed_wrong_arity(self):
        with pytest.raises(ValueError):
            grow_region(two_blob_criterion(), [(1, 1)])


class TestGrow4D:
    def moving_blob_stack(self, n_steps=4):
        """A blob moving one voxel per step; consecutive steps overlap."""
        stack = np.zeros((n_steps, 8, 8, 8), dtype=bool)
        for t in range(n_steps):
            stack[t, 2:5, 2:5, 2 + t : 5 + t] = True
        return stack

    def test_tracks_across_time_from_first_step_seed(self):
        stack = self.moving_blob_stack()
        grown = grow_4d(stack, [(0, 3, 3, 3)])
        for t in range(4):
            assert grown[t].any(), f"lost the feature at step {t}"
        assert np.array_equal(grown, stack)

    def test_no_time_connect_stays_in_step(self):
        stack = self.moving_blob_stack()
        grown = grow_4d(stack, [(0, 3, 3, 3)], time_connect=False)
        assert grown[0].any()
        assert not grown[1:].any()

    def test_temporal_gap_breaks_tracking(self):
        stack = self.moving_blob_stack()
        stack[2] = False  # feature vanishes for one step
        grown = grow_4d(stack, [(0, 3, 3, 3)])
        assert grown[0].any() and grown[1].any()
        assert not grown[2].any() and not grown[3].any()

    def test_non_overlapping_motion_breaks_tracking(self):
        """If the feature jumps farther than its size, 4D growth cannot
        follow — the paper's sufficient-temporal-sampling assumption."""
        stack = np.zeros((2, 8, 8, 8), dtype=bool)
        stack[0, 0:2, 0:2, 0:2] = True
        stack[1, 5:7, 5:7, 5:7] = True
        grown = grow_4d(stack, [(0, 0, 0, 0)])
        assert grown[0].any()
        assert not grown[1].any()

    def test_rejects_3d_input(self):
        with pytest.raises(ValueError):
            grow_4d(np.zeros((4, 4, 4), dtype=bool), [(0, 0, 0)])

    def test_list_of_3d_masks_accepted(self):
        masks = [np.ones((4, 4, 4), dtype=bool)] * 3
        grown = grow_4d(masks, [(0, 1, 1, 1)])
        assert grown.shape == (3, 4, 4, 4)
        assert grown.all()
