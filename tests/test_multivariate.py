"""Tests for multivariate volumes and multivariate feature extraction."""

import numpy as np
import pytest

from repro.core import DataSpaceClassifier
from repro.core.dataspace import MultivariateShellExtractor
from repro.data.combustion import make_combustion_multivariate
from repro.metrics import feature_retention, precision_recall
from repro.volume.multivariate import MultiVolume, is_multivariate


@pytest.fixture(scope="module")
def mv_sequence():
    return make_combustion_multivariate(
        shape=(16, 48, 32), times=[8, 36, 64, 92, 128], seed=11
    )


class TestMultiVolume:
    def test_requires_fields(self):
        with pytest.raises(ValueError):
            MultiVolume({})

    def test_primary_is_data(self):
        a = np.zeros((2, 2, 2), dtype=np.float32)
        b = np.ones((2, 2, 2), dtype=np.float32)
        mv = MultiVolume({"a": a, "b": b}, primary="b")
        assert np.array_equal(mv.data, b)
        assert mv.primary_name == "b"

    def test_unknown_primary(self):
        with pytest.raises(KeyError):
            MultiVolume({"a": np.zeros((2, 2, 2))}, primary="z")

    def test_field_lookup(self):
        mv = MultiVolume({"a": np.zeros((2, 2, 2)), "b": np.ones((2, 2, 2))})
        assert mv.field("b").max() == 1.0
        with pytest.raises(KeyError, match="available"):
            mv.field("c")

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MultiVolume({"a": np.zeros((2, 2, 2)), "b": np.zeros((3, 3, 3))})

    def test_with_primary_switches_view(self):
        mv = MultiVolume({"a": np.zeros((2, 2, 2)), "b": np.ones((2, 2, 2))}, time=7)
        other = mv.with_primary("b")
        assert other.data.max() == 1.0
        assert other.time == 7

    def test_is_multivariate(self):
        single = MultiVolume({"a": np.zeros((2, 2, 2))})
        multi = MultiVolume({"a": np.zeros((2, 2, 2)), "b": np.zeros((2, 2, 2))})
        assert not is_multivariate(single)
        assert is_multivariate(multi)

    def test_volume_api_still_works(self, mv_sequence):
        """MultiVolume must remain a drop-in Volume for single-variable
        machinery (histograms, slicing, rendering)."""
        vol = mv_sequence.at_time(64)
        assert vol.slice_plane(0, 4).shape == (48, 32)
        assert vol.value_range[1] > 0


class TestMultivariateShellExtractor:
    def test_feature_layout(self):
        ex = MultivariateShellExtractor(["a", "b"], radius=2, directions="faces")
        assert ex.n_features == 2 * (1 + 6) + 3 + 1
        names = ex.feature_names
        assert names[0] == "a:value"
        assert "b:shell_0" in names
        assert names[-1] == "time"

    def test_validation(self):
        with pytest.raises(ValueError):
            MultivariateShellExtractor([])
        with pytest.raises(ValueError):
            MultivariateShellExtractor(["a", "a"])

    def test_features_read_each_field(self):
        a = np.full((6, 6, 6), 2.0, dtype=np.float32)
        b = np.full((6, 6, 6), 5.0, dtype=np.float32)
        mv = MultiVolume({"a": a, "b": b})
        ex = MultivariateShellExtractor(["a", "b"], radius=1, directions="faces",
                                        include_position=False, include_time=False)
        feats = ex.features_at(mv, [(3, 3, 3)])
        assert np.allclose(feats[0, :7], 2.0)
        assert np.allclose(feats[0, 7:], 5.0)

    def test_iter_matches_direct(self, mv_sequence):
        vol = mv_sequence.at_time(64)
        ex = MultivariateShellExtractor(["vorticity", "ux"], radius=2)
        chunks = [f for _, f in ex.iter_volume_features(vol, time=64.0, chunk=999)]
        stacked = np.concatenate(chunks)
        coords = np.stack(np.unravel_index(np.arange(vol.size), vol.shape), axis=1)
        assert np.allclose(stacked, ex.features_at(vol, coords, time=64.0))


class TestMultivariateClassification:
    """The Sec. 8 claim: the joint signature finds what no single variable
    can — here the 'burning core' = vortical interface sheet ∧ hot gas."""

    def train(self, sequence, field_names, seed=3):
        ex = MultivariateShellExtractor(field_names, radius=2)
        clf = DataSpaceClassifier(ex, seed=seed)
        rng = np.random.default_rng(0)
        for t in (8, 64, 128):
            vol = sequence.at_time(t)
            target = vol.mask("burning_core")

            def sample(mask, n):
                coords = np.argwhere(mask)
                sel = coords[rng.choice(len(coords), size=min(n, len(coords)), replace=False)]
                m = np.zeros(mask.shape, dtype=bool)
                m[tuple(sel.T)] = True
                return m

            clf.add_examples(vol, positive_mask=sample(target, 150),
                             negative_mask=sample(~target, 300))
        clf.train(epochs=300)
        return clf

    def f1(self, cert, truth):
        p, r = precision_recall(np.asarray(cert) > 0.5, truth)
        return 0.0 if p + r == 0 else 2 * p * r / (p + r)

    def test_joint_beats_single_variables(self, mv_sequence):
        eval_vol = mv_sequence.at_time(36)  # unseen step
        truth = eval_vol.mask("burning_core")
        scores = {}
        for flds in (["vorticity", "temperature"], ["vorticity"], ["temperature"]):
            clf = self.train(mv_sequence, flds)
            cert = clf.classify(eval_vol)
            scores["+".join(flds)] = self.f1(cert, truth)
        assert scores["vorticity+temperature"] > 0.65
        assert scores["vorticity+temperature"] > scores["vorticity"] + 0.1
        assert scores["vorticity+temperature"] > scores["temperature"] + 0.1

    def test_retention_on_unseen_step(self, mv_sequence):
        clf = self.train(mv_sequence, ["vorticity", "temperature"])
        eval_vol = mv_sequence.at_time(92)
        cert = clf.classify(eval_vol)
        assert feature_retention(cert, eval_vol.mask("burning_core"), 0.5) > 0.7
