"""Tests for repro.render.validation: visual validation (Sec. 8)."""

import numpy as np
import pytest

from repro.render.validation import (
    AGREE_COLOR,
    MISSED_COLOR,
    SPURIOUS_COLOR,
    agreement_overlay,
    agreement_report,
    tracking_agreement,
)
from repro.volume import Volume


def masks_pair(shape=(6, 6, 6)):
    predicted = np.zeros(shape, dtype=bool)
    reference = np.zeros(shape, dtype=bool)
    predicted[1:4] = True  # 3 slabs
    reference[2:5] = True  # 3 slabs, 2 shared
    return predicted, reference


class TestAgreementReport:
    def test_counts(self):
        p, r = masks_pair()
        rep = agreement_report(p, r)
        assert rep.both == 2 * 36
        assert rep.prediction_only == 36
        assert rep.reference_only == 36
        assert rep.total == 6**3

    def test_rates(self):
        p, r = masks_pair()
        rep = agreement_report(p, r)
        assert rep.jaccard == pytest.approx(2 / 4)
        assert rep.spurious_rate == pytest.approx(1 / 3)
        assert rep.missed_rate == pytest.approx(1 / 3)

    def test_perfect_agreement(self):
        p, _ = masks_pair()
        rep = agreement_report(p, p)
        assert rep.jaccard == 1.0
        assert rep.spurious_rate == 0.0
        assert rep.missed_rate == 0.0

    def test_empty_masks(self):
        e = np.zeros((3, 3, 3), dtype=bool)
        rep = agreement_report(e, e)
        assert rep.jaccard == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            agreement_report(np.zeros((2, 2, 2), bool), np.zeros((3, 3, 3), bool))


class TestAgreementOverlay:
    def test_colors_appear(self):
        p, r = masks_pair()
        vol = Volume(np.zeros((6, 6, 6), dtype=np.float32))
        img = agreement_overlay(vol, p, r, axis=2, index=3, strength=1.0)
        rgb = img.pixels[..., :3]
        for color in (AGREE_COLOR, SPURIOUS_COLOR, MISSED_COLOR):
            target = np.asarray(color, dtype=np.float32)
            assert (np.abs(rgb - target).sum(axis=-1) < 0.05).any(), color

    def test_agree_rows_green(self):
        p, r = masks_pair()
        vol = Volume(np.zeros((6, 6, 6), dtype=np.float32))
        img = agreement_overlay(vol, p, r, axis=2, index=0, strength=1.0)
        # rows 2-3 (z) are in both masks -> green
        assert np.allclose(img.pixels[2, 0, :3], AGREE_COLOR, atol=0.01)
        # row 1 prediction-only -> red
        assert np.allclose(img.pixels[1, 0, :3], SPURIOUS_COLOR, atol=0.01)
        # row 4 reference-only -> blue
        assert np.allclose(img.pixels[4, 0, :3], MISSED_COLOR, atol=0.01)

    def test_validation(self):
        vol = Volume(np.zeros((4, 4, 4), dtype=np.float32))
        with pytest.raises(ValueError):
            agreement_overlay(vol, np.zeros((2, 2, 2), bool),
                              np.zeros((4, 4, 4), bool), 0, 0)
        with pytest.raises(ValueError):
            agreement_overlay(vol, np.zeros((4, 4, 4), bool),
                              np.zeros((4, 4, 4), bool), 0, 0, strength=2.0)


class TestTrackingAgreement:
    def test_per_step_jaccard(self, vortex_small):
        from repro.core import FeatureTracker
        from repro.segmentation.prediction import PredictionVerificationTracker

        criteria = np.stack([v.data > 0.5 for v in vortex_small])
        coords = np.argwhere(vortex_small[0].mask("vortex"))
        seed3 = tuple(int(c) for c in coords[len(coords) // 2])
        rg = FeatureTracker().track_fixed(vortex_small, (0, *seed3), 0.5, 10.0)
        pv = PredictionVerificationTracker(max_distance=10.0).track(
            vortex_small, criteria, seed3)
        curve = tracking_agreement(rg, pv)
        assert len(curve) == len(vortex_small)
        # both methods track the same vortex until the split; at the split
        # region growing keeps both children while prediction keeps one.
        assert curve[0][1] > 0.9
        assert curve[-1][1] < 0.9

    def test_mismatched_steps_rejected(self):
        class R:
            times = [1, 2]
            masks = np.zeros((2, 2, 2, 2), dtype=bool)

        class S:
            times = [1, 3]
            masks = np.zeros((2, 2, 2, 2), dtype=bool)

        with pytest.raises(ValueError):
            tracking_agreement(R(), S())
