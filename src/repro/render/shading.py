"""Gradient-based Phong shading.

The paper's Sec. 7 performance numbers are measured "with shading"; the
standard DVR shading model of the era is Phong lighting with the scalar
gradient as the surface normal.  :func:`phong_shade` is a batch operation
over arbitrary sample arrays so the ray caster can shade a whole sample
shell at once.
"""

from __future__ import annotations

import numpy as np


def phong_shade(
    colors: np.ndarray,
    gradients: np.ndarray,
    light_dir,
    view_dir,
    ambient: float = 0.3,
    diffuse: float = 0.6,
    specular: float = 0.3,
    shininess: float = 16.0,
) -> np.ndarray:
    """Shade sample colors with Phong lighting.

    Parameters
    ----------
    colors:
        ``(..., 3)`` RGB samples.
    gradients:
        ``(..., 3)`` scalar-field gradients at the samples (need not be
        normalized; near-zero gradients fall back to unshaded ambient+
        diffuse so homogeneous regions don't flicker).
    light_dir, view_dir:
        Direction *toward* the light / viewer, (z, y, x) order.
    ambient, diffuse, specular, shininess:
        Standard Phong coefficients.

    Returns
    -------
    Shaded RGB of the same shape as ``colors``.
    """
    colors = np.asarray(colors, dtype=np.float32)
    gradients = np.asarray(gradients, dtype=np.float32)
    if colors.shape[-1] != 3 or gradients.shape[-1] != 3:
        raise ValueError("colors and gradients must end in a 3-vector axis")
    light = np.asarray(light_dir, dtype=np.float32)
    light = light / np.linalg.norm(light)
    view = np.asarray(view_dir, dtype=np.float32)
    view = view / np.linalg.norm(view)

    norm = np.linalg.norm(gradients, axis=-1, keepdims=True)
    flat = (norm[..., 0] < 1e-6)
    normals = np.where(norm > 1e-6, gradients / np.maximum(norm, 1e-12), 0.0)

    # Two-sided lighting: a gradient is an isosurface normal without a
    # consistent sign, so take |n·l|.
    ndotl = np.abs(np.einsum("...c,c->...", normals, light))
    half = light + view
    half = half / np.linalg.norm(half)
    ndoth = np.abs(np.einsum("...c,c->...", normals, half))

    intensity = ambient + diffuse * ndotl
    intensity = np.where(flat, ambient + diffuse, intensity)
    spec = specular * np.power(ndoth, shininess)
    spec = np.where(flat, 0.0, spec)

    shaded = colors * intensity[..., None] + spec[..., None]
    return np.clip(shaded, 0.0, 1.0).astype(np.float32)
