"""Tests for repro.core.pipeline: sequence-level orchestration."""

import numpy as np
import pytest

from repro.core import (
    AdaptiveTransferFunction,
    DataSpaceClassifier,
    FeatureTracker,
    ShellFeatureExtractor,
    classify_sequence,
    generate_sequence_tfs,
    render_sequence,
    run_pipelined,
)
from repro.core.pipeline import extraction_masks
from repro.data.swirl import feature_peak_at
from repro.parallel import WorkerPool
from repro.render import Camera
from repro.transfer import TransferFunction1D


def tiny_classifier(sequence, seed=0):
    rng = np.random.default_rng(seed)
    clf = DataSpaceClassifier(ShellFeatureExtractor(radius=2), seed=seed)

    def sample(mask, n):
        coords = np.argwhere(mask)
        sel = coords[rng.choice(len(coords), size=min(n, len(coords)), replace=False)]
        m = np.zeros(mask.shape, dtype=bool)
        m[tuple(sel.T)] = True
        return m

    for t in (130, 310):
        vol = sequence.at_time(t)
        clf.add_examples(vol, positive_mask=sample(vol.mask("large"), 80),
                         negative_mask=sample(vol.mask("small") | ~(vol.mask("large") | vol.mask("small")), 80))
    clf.train(epochs=150)
    return clf


class TestClassifySequence:
    def test_serial_results_per_step(self, cosmology_small):
        clf = tiny_classifier(cosmology_small)
        results = classify_sequence(clf, cosmology_small, backend="serial")
        assert len(results) == len(cosmology_small)
        for cert in results:
            assert cert.shape == cosmology_small.shape

    def test_process_matches_serial(self, cosmology_small):
        clf = tiny_classifier(cosmology_small)
        serial = classify_sequence(clf, cosmology_small, backend="serial")
        proc = classify_sequence(clf, cosmology_small, backend="process", workers=2)
        for a, b in zip(serial, proc):
            assert np.allclose(a, b)


def make_iatf(swirl_small):
    iatf = AdaptiveTransferFunction.for_sequence(swirl_small, seed=3)
    for t in (swirl_small.times[0], swirl_small.times[-1]):
        peak = feature_peak_at(swirl_small, t)
        tf = TransferFunction1D(swirl_small.value_range).add_tent(0.75 * peak, 0.9 * peak, 1.0)
        iatf.add_key_frame(swirl_small.at_time(t), tf)
    iatf.train(epochs=200)
    return iatf


class TestGenerateSequenceTFs:
    def test_one_tf_per_step(self, swirl_small):
        iatf = make_iatf(swirl_small)
        tfs = generate_sequence_tfs(iatf, swirl_small, backend="serial")
        assert len(tfs) == len(swirl_small)
        for tf in tfs:
            assert (tf.lo, tf.hi) == swirl_small.value_range

    def test_parallel_matches_serial(self, swirl_small):
        iatf = make_iatf(swirl_small)
        serial = generate_sequence_tfs(iatf, swirl_small, backend="serial")
        proc = generate_sequence_tfs(iatf, swirl_small, backend="process", workers=2)
        for a, b in zip(serial, proc):
            assert np.allclose(a.opacity, b.opacity)


class TestRenderSequence:
    def test_shared_tf(self, swirl_small):
        tf = TransferFunction1D(swirl_small.value_range).add_box(0.3, 0.9, 0.6)
        images = render_sequence(
            swirl_small, tf, camera=Camera(width=24, height=24),
            shading=False, backend="serial",
        )
        assert len(images) == len(swirl_small)
        assert images[0].shape == (24, 24)

    def test_per_step_tfs(self, swirl_small):
        tfs = [TransferFunction1D(swirl_small.value_range).add_box(0.2, 0.9, 0.5)
               for _ in swirl_small]
        images = render_sequence(swirl_small, tfs, camera=Camera(width=16, height=16),
                                 shading=False, backend="serial")
        assert len(images) == len(swirl_small)

    def test_tf_count_validated(self, swirl_small):
        tfs = [TransferFunction1D(swirl_small.value_range)]
        with pytest.raises(ValueError):
            render_sequence(swirl_small, tfs, backend="serial")


class TestRunPipelined:
    def test_iatf_chain_matches_barrier(self, swirl_small):
        """Dataflow interleaving reorders the work, not one output bit."""
        iatf = make_iatf(swirl_small)
        camera = Camera(width=16, height=16)
        ref_tfs = generate_sequence_tfs(iatf, swirl_small, backend="serial")
        ref_images = render_sequence(swirl_small, ref_tfs, camera=camera,
                                     shading=False, backend="serial")
        out = run_pipelined(swirl_small, iatf=iatf, camera=camera, shading=False)
        assert out.certainties is None
        assert len(out.tfs) == len(swirl_small)
        for a, b in zip(out.tfs, ref_tfs):
            assert np.array_equal(a.opacity, b.opacity)
        for a, b in zip(out.images, ref_images):
            assert np.array_equal(a.pixels, b.pixels)

    def test_pooled_matches_serial(self, swirl_small):
        iatf = make_iatf(swirl_small)
        camera = Camera(width=16, height=16)
        serial = run_pipelined(swirl_small, iatf=iatf, camera=camera, shading=False)
        with WorkerPool(workers=2) as pool:
            pooled = run_pipelined(swirl_small, iatf=iatf, camera=camera,
                                   shading=False, pool=pool)
            assert pool.spawned <= 2
        for a, b in zip(pooled.tfs, serial.tfs):
            assert np.array_equal(a.opacity, b.opacity)
        for a, b in zip(pooled.images, serial.images):
            assert np.array_equal(a.pixels, b.pixels)

    def test_own_pool_matches_serial(self, swirl_small):
        tf = TransferFunction1D(swirl_small.value_range).add_box(0.3, 0.9, 0.6)
        camera = Camera(width=16, height=16)
        serial = run_pipelined(swirl_small, tfs=tf, camera=camera, shading=False)
        pooled = run_pipelined(swirl_small, tfs=tf, camera=camera, shading=False,
                               workers=2)
        for a, b in zip(pooled.images, serial.images):
            assert np.array_equal(a.pixels, b.pixels)

    def test_classify_and_render_chain(self, cosmology_small):
        clf = tiny_classifier(cosmology_small)
        tf = TransferFunction1D(cosmology_small.value_range).add_box(0.3, 0.9, 0.6)
        camera = Camera(width=16, height=16)
        ref_certs = classify_sequence(clf, cosmology_small, backend="serial")
        ref_images = render_sequence(cosmology_small, tf, camera=camera,
                                     shading=False, backend="serial")
        out = run_pipelined(cosmology_small, classifier=clf, tfs=tf,
                            camera=camera, shading=False)
        for a, b in zip(out.certainties, ref_certs):
            assert np.array_equal(a, b)
        for a, b in zip(out.images, ref_images):
            assert np.array_equal(a.pixels, b.pixels)

    def test_classify_only(self, cosmology_small):
        clf = tiny_classifier(cosmology_small)
        out = run_pipelined(cosmology_small, classifier=clf)
        assert out.tfs is None and out.images is None
        assert len(out.certainties) == len(cosmology_small)

    def test_validation(self, swirl_small):
        iatf_like = TransferFunction1D(swirl_small.value_range)
        with pytest.raises(ValueError, match="nothing to do"):
            run_pipelined(swirl_small)
        with pytest.raises(ValueError, match="not both"):
            run_pipelined(swirl_small, iatf=object(), tfs=iatf_like)
        with pytest.raises(ValueError, match="one TF per step"):
            run_pipelined(swirl_small, tfs=[iatf_like])
        with pytest.raises(ValueError, match="fast_options"):
            run_pipelined(swirl_small, tfs=iatf_like, fast_options={})
        with pytest.raises(ValueError, match="mode"):
            run_pipelined(swirl_small, tfs=iatf_like, mode="warp")


class TestExtractionMasks:
    def test_stacks_and_thresholds(self):
        certs = [np.full((2, 2, 2), 0.3), np.full((2, 2, 2), 0.8)]
        stack = extraction_masks(certs, threshold=0.5)
        assert stack.shape == (2, 2, 2, 2)
        assert not stack[0].any()
        assert stack[1].all()

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            extraction_masks([np.zeros((2, 2, 2))], threshold=1.5)

    def test_composes_with_tracker(self, cosmology_small):
        """Extraction (data space) feeds tracking: Sec. 4.3 + Sec. 5."""
        clf = tiny_classifier(cosmology_small)
        certs = classify_sequence(clf, cosmology_small, backend="serial")
        stack = extraction_masks(certs, threshold=0.5)
        vol = cosmology_small.at_time(130)
        coords = np.argwhere(stack[0] & vol.mask("large"))
        if len(coords) == 0:
            pytest.skip("classifier found nothing at step 130 on this seed")
        seed = (0, *map(int, coords[0]))
        res = FeatureTracker().track_with_criteria(cosmology_small, stack, seed, "learned")
        assert res.masks.shape == stack.shape
        assert res.voxel_counts[0] > 0
