"""Golden-trajectory regression tests for the tracking stack.

Two scenarios with committed lineage/event fixtures under ``tests/golden/``:

- **argon ring** — the drifting smoke ring tracked with per-step value
  bands read off the ground-truth histogram (the user workflow of Figs.
  3–4), exercising long-range continuation;
- **synthetic events** — a handcrafted block world whose tracked feature
  exhibits every event kind: birth (a disjoint blob joins the lineage
  only through a *later* merge, so backward-in-time reachability is
  required), merge, split, and death.

Each scenario must produce byte-identical trajectories through all three
execution paths — eager scipy, eager bricked, and streaming — and those
trajectories must match the committed goldens exactly.  Regenerate after
an *intentional* behavior change with::

    PYTHONPATH=src python tests/test_golden_trajectories.py --regen
"""

import json
from functools import lru_cache
from pathlib import Path

import numpy as np
import pytest

from repro.core import FeatureTracker
from repro.data import make_argon_sequence
from repro.data.argon import ring_value_band
from repro.segmentation import FeatureLineage
from repro.volume.grid import Volume, VolumeSequence

GOLDEN_DIR = Path(__file__).parent / "golden"

ARGON_KW = dict(shape=(24, 32, 32), times=[195, 210, 225, 240, 255], seed=7)


# --------------------------------------------------------------------- #
# Scenarios
# --------------------------------------------------------------------- #
@lru_cache(maxsize=1)
def argon_scenario():
    """The argon ring under per-step histogram bands: (sequence, criteria_fn, seed)."""
    seq = make_argon_sequence(**ARGON_KW)
    bands = {t: ring_value_band(seq, t) for t in seq.times}

    def criteria_fn(vol):
        lo, hi = bands[vol.time]
        return (vol.data >= lo) & (vol.data <= hi)

    coords = np.argwhere(seq[0].mask("ring") & criteria_fn(seq[0]))
    seed = (0, *(int(c) for c in coords[0]))
    return seq, criteria_fn, seed


@lru_cache(maxsize=1)
def synthetic_scenario():
    """Block world covering birth, merge, split, and death.

    Blocks A (y 2:6) and B (y 10:14) share z/x extents.  B first exists at
    t=2 with no t=1 overlap; the lineage only reaches it through the t=3
    merged bar — forward-only growth misses B at t=2, making this scenario
    a regression test for backward-in-time reachability.  The bar splits
    again at t=4 and B's branch dies after it.
    """
    shape = (16, 16, 16)
    A = (slice(2, 6), slice(2, 6), slice(2, 6))
    B = (slice(2, 6), slice(10, 14), slice(2, 6))
    BAR = (slice(2, 6), slice(2, 14), slice(2, 6))
    crit = np.zeros((6, *shape), dtype=bool)
    for t in (0, 1, 2):
        crit[t][A] = True
    crit[2][B] = True
    crit[3][BAR] = True
    crit[4][A] = True
    crit[4][B] = True
    crit[5][A] = True

    volumes = [Volume(step.astype(np.float32), time=t, name="blocks")
               for t, step in enumerate(crit)]
    seq = VolumeSequence(volumes, name="blocks")

    def criteria_fn(vol):
        return vol.data > 0.5

    return seq, criteria_fn, (0, 3, 3, 3)


SCENARIOS = {
    "argon_ring": argon_scenario,
    "synthetic_events": synthetic_scenario,
}


# --------------------------------------------------------------------- #
# Trajectory records
# --------------------------------------------------------------------- #
def event_records(events):
    return [
        {"kind": e.kind, "time_a": int(e.time_a), "time_b": int(e.time_b),
         "sources": [int(s) for s in e.sources],
         "targets": [int(t) for t in e.targets]}
        for e in events
    ]


def lineage_record(masks, times):
    lineage = FeatureLineage(list(masks), times=times)
    root_voxel = np.argwhere(masks[0])[0]
    root = lineage.node_at(times[0], root_voxel)
    return {
        "n_features": int(lineage.n_features),
        "n_edges": int(lineage.graph.number_of_edges()),
        "events_along": [[kind, int(ta), int(tb)]
                         for kind, ta, tb in lineage.events_along(root)],
        "volume_history": [[int(t), int(v)]
                           for t, v in lineage.volume_history(root)],
    }


def trajectory_record(result):
    """Everything we pin: per-step counts, events, and lineage structure."""
    masks = result.masks
    return {
        "times": [int(t) for t in result.times],
        "voxel_counts": [int(c) for c in result.voxel_counts],
        "component_counts": [int(c) for c in result.component_counts()],
        "events": event_records(result.events),
        "lineage": lineage_record(masks, list(result.times)),
    }


def run_path(scenario: str, path: str):
    seq, criteria_fn, seed = SCENARIOS[scenario]()
    criteria = np.stack([criteria_fn(v) for v in seq])
    if path == "scipy":
        tracker = FeatureTracker(engine="scipy")
        return tracker.track_with_criteria(seq, criteria, seed, name="golden")
    if path == "bricked":
        tracker = FeatureTracker(engine="bricked", brick_shape=(8, 8, 8))
        return tracker.track_with_criteria(seq, criteria, seed, name="golden")
    if path == "streaming":
        tracker = FeatureTracker()
        return tracker.track_streaming(seq, seed, criteria_fn=criteria_fn,
                                       name="golden")
    raise ValueError(path)


def load_golden(scenario: str) -> dict:
    return json.loads((GOLDEN_DIR / f"{scenario}.json").read_text())


# --------------------------------------------------------------------- #
# Tests
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("path", ["scipy", "bricked", "streaming"])
def test_trajectory_matches_golden(scenario, path):
    golden = load_golden(scenario)
    record = trajectory_record(run_path(scenario, path))
    assert record == golden


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_paths_agree_voxelwise(scenario):
    """Stronger than the golden: the three paths' masks are bit-identical."""
    ref = run_path(scenario, "scipy").masks
    assert np.array_equal(run_path(scenario, "bricked").masks, ref)
    assert np.array_equal(run_path(scenario, "streaming").masks, ref)


def test_synthetic_golden_covers_all_event_kinds():
    kinds = {e["kind"] for e in load_golden("synthetic_events")["events"]}
    assert {"birth", "death", "split", "merge", "continuation"} <= kinds


def test_synthetic_requires_backward_reachability():
    """Forward-only streaming must *miss* block B at t=2 (it is reachable
    only through the later merge); refinement must recover it exactly."""
    seq, criteria_fn, seed = synthetic_scenario()
    tracker = FeatureTracker()
    forward = tracker.track_streaming(seq, seed, criteria_fn=criteria_fn,
                                      refine=False)
    refined = tracker.track_streaming(seq, seed, criteria_fn=criteria_fn)
    assert not forward.step_mask(2)[2:6, 10:14, 2:6].any()
    assert refined.step_mask(2)[2:6, 10:14, 2:6].all()
    assert refined.voxel_counts[2] > forward.voxel_counts[2]


class TestPredictSeeds:
    """Motion-extrapolated seeding is documented as a *superset* of plain
    4D growth: shifted seeds can only add criterion components, never
    drop tracked voxels, and a static feature gains nothing."""

    def test_static_feature_is_unchanged(self):
        seq, criteria_fn, seed = synthetic_scenario()
        tracker = FeatureTracker()
        plain = tracker.track_streaming(seq, seed, criteria_fn=criteria_fn)
        predicted = tracker.track_streaming(seq, seed, criteria_fn=criteria_fn,
                                            predict_seeds=True)
        assert np.array_equal(predicted.masks, plain.masks)
        assert event_records(predicted.events) == event_records(plain.events)

    def test_moving_feature_yields_superset(self):
        seq, criteria_fn, seed = argon_scenario()
        tracker = FeatureTracker()
        plain = tracker.track_streaming(seq, seed, criteria_fn=criteria_fn)
        predicted = tracker.track_streaming(seq, seed, criteria_fn=criteria_fn,
                                            predict_seeds=True)
        assert np.array_equal(predicted.masks & plain.masks, plain.masks)
        assert all(p >= q for p, q in
                   zip(predicted.voxel_counts, plain.voxel_counts))


def test_golden_fixtures_are_committed():
    for scenario in SCENARIOS:
        assert (GOLDEN_DIR / f"{scenario}.json").is_file(), (
            f"missing golden fixture for {scenario!r}; regenerate with "
            f"PYTHONPATH=src python tests/test_golden_trajectories.py --regen"
        )


class TestAdaptivePathAgreement:
    """Streaming with an IATF criterion equals the eager adaptive path.

    No committed floats — the trained network differs across library
    versions — only internal agreement between consumption models.
    """

    def test_streaming_matches_track_adaptive(self, swirl_small):
        from tests.test_tracking import swirl_iatf, swirl_seed

        tracker = FeatureTracker(opacity_threshold=0.1)
        iatf = swirl_iatf(swirl_small)
        seed = swirl_seed(swirl_small)
        eager = tracker.track_adaptive(swirl_small, seed, iatf)
        streamed = tracker.track_streaming(swirl_small, seed, iatf=iatf)
        assert streamed.criterion == "adaptive"
        assert np.array_equal(streamed.masks, eager.masks)
        assert event_records(streamed.events) == event_records(eager.events)


# --------------------------------------------------------------------- #
# Regeneration
# --------------------------------------------------------------------- #
def regenerate():
    GOLDEN_DIR.mkdir(exist_ok=True)
    for scenario in sorted(SCENARIOS):
        record = trajectory_record(run_path(scenario, "scipy"))
        out = GOLDEN_DIR / f"{scenario}.json"
        out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out} ({len(record['events'])} events)")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        regenerate()
    else:
        print(__doc__)
