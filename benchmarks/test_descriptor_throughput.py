"""Descriptor extraction + index throughput — the costs of the matching
fallback, measured.

Two machine-relative ratios, both gated by a committed baseline:

- ``speedup_warm_index``: building a :class:`DescriptorIndex` means
  labeling every step's criterion and extracting one descriptor per
  component; warm-loading the persisted index from the artifact store is
  one JSON read plus one array read.  The ratio is what the
  content-addressed persistence buys every repeat ``repro match`` over
  an unchanged run — the contract the CI warm-replay leg asserts
  functionally and this bench asserts quantitatively.
- ``speedup_batch_query``: :meth:`DescriptorIndex.scores` answers a
  query with one GEMV over the row matrix; the naive alternative loops
  Python-level over rows.  The ratio is why brute-force NN needs no
  approximate-NN machinery at this scale.

Ungated context numbers ride along: descriptors/second of raw
extraction and the per-query latency of the vectorized path.
"""

import json
import os
import tempfile
from pathlib import Path

import numpy as np

from repro.cache.store import ArtifactStore
from repro.data import make_fast_vortex_sequence
from repro.features import DescriptorIndex, cached_index, describe_components
from repro.utils.timing import Timer

SHAPE = (40, 40, 40)
QUERY_REPEATS = 50


def _write_bench(name: str, payload: dict) -> Path:
    """Drop a ``BENCH_<name>.json`` next to the pytest cwd (CI artifact)."""
    out = Path(os.environ.get("REPRO_BENCH_DIR", ".")) / f"BENCH_{name}.json"
    out.write_text(json.dumps(payload, indent=2))
    return out


def _build_index(sequence) -> DescriptorIndex:
    index = DescriptorIndex()
    for vol in sequence:
        crit = (vol.data >= 0.5) & (vol.data <= 1.0)
        for cand in describe_components(vol.data, crit, min_voxels=8):
            index.add(cand.descriptor, cand.meta(time=int(vol.time)))
    return index


def _loop_scores(matrix: np.ndarray, query: np.ndarray) -> list[float]:
    """The un-vectorized strawman: one dot + norm per row."""
    qn = float(np.linalg.norm(query))
    return [float(np.dot(row, query) / (np.linalg.norm(row) * qn))
            for row in matrix]


def test_descriptor_throughput(benchmark):
    sequence = make_fast_vortex_sequence(shape=SHAPE, seed=47)

    # -- cold build-and-persist vs warm load --------------------------- #
    with tempfile.TemporaryDirectory() as tmp:
        store = ArtifactStore(Path(tmp))
        with Timer() as t_cold:
            index, hit = cached_index(store, "bench", lambda: _build_index(sequence))
        assert not hit
        warm_times = []
        for _ in range(3):
            with Timer() as t_warm:
                warm, hit = cached_index(store, "bench",
                                         lambda: _build_index(sequence))
            assert hit
            warm_times.append(t_warm.elapsed)
        assert len(warm) == len(index)
    speedup_warm = t_cold.elapsed / min(warm_times)

    benchmark.pedantic(lambda: _build_index(sequence), rounds=1, iterations=1)

    # -- vectorized GEMV query vs Python row loop ---------------------- #
    matrix = index.matrix
    queries = [matrix[i] for i in range(min(8, len(index)))]
    with Timer() as t_loop:
        for _ in range(QUERY_REPEATS):
            for q in queries:
                _loop_scores(matrix, q)
    with Timer() as t_gemv:
        for _ in range(QUERY_REPEATS):
            for q in queries:
                index.scores(q)
    speedup_batch = t_loop.elapsed / t_gemv.elapsed
    # Sanity: the two paths agree on what they score.
    assert np.allclose(_loop_scores(matrix, queries[0]),
                       index.scores(queries[0]), atol=1e-5)

    n_queries = QUERY_REPEATS * len(queries)
    per_query_us = t_gemv.elapsed / n_queries * 1e6
    desc_per_s = len(index) / t_cold.elapsed

    print(f"\nindex: {len(index)} descriptors over {len(sequence)} steps "
          f"({np.prod(SHAPE):,} voxels/step)")
    print(f"cold build+persist {t_cold.elapsed:.3f}s "
          f"({desc_per_s:.1f} descriptors/s), warm load "
          f"{min(warm_times) * 1e3:.2f}ms, {speedup_warm:.1f}x")
    print(f"query: GEMV {per_query_us:.1f}us/query vs row loop, "
          f"{speedup_batch:.2f}x over {n_queries} queries")
    benchmark.extra_info["speedup_warm_index"] = round(speedup_warm, 3)
    benchmark.extra_info["speedup_batch_query"] = round(speedup_batch, 3)
    _write_bench("descriptor", {
        "rows": len(index),
        "steps": len(sequence),
        "cold_build_s": round(t_cold.elapsed, 4),
        "warm_load_s": round(min(warm_times), 5),
        "descriptors_per_s": round(desc_per_s, 1),
        "query_us": round(per_query_us, 2),
        "speedup_warm_index": round(speedup_warm, 3),
        "speedup_batch_query": round(speedup_batch, 3),
    })

    assert speedup_warm >= 3.0
    assert speedup_batch >= 1.5
