"""Fixed vs adaptive tracking of a fading feature (paper Fig. 10).

The swirling-flow feature's data values decrease over time.  A
conventional tracker with a fixed value-range criterion loses it once its
values fall below the range; the paper's adaptive criterion — the IATF
regenerated per step from two key frames whose tracked range the user
decreased — follows it to the end.

Run:  python examples/adaptive_tracking_swirl.py
"""

from pathlib import Path

import numpy as np

from repro import (
    AdaptiveTransferFunction,
    Camera,
    FeatureTracker,
    TransferFunction1D,
    grayscale_colormap,
    make_swirl_sequence,
    render_tracked,
)
from repro.data.swirl import feature_peak_at
from repro.metrics import tracking_continuity

OUT = Path(__file__).parent / "output" / "swirl"


def main():
    print("Generating the swirling-flow sequence (feature fades over time)...")
    sequence = make_swirl_sequence(shape=(36, 36, 36))
    times = sequence.times
    peaks = {t: feature_peak_at(sequence, t) for t in times}
    print("  feature peak value:",
          "  ".join(f"t{t}:{peaks[t]:.2f}" for t in (times[0], times[len(times)//2], times[-1])))

    first = sequence[0]
    coords = np.argwhere(first.mask("feature") & (first.data > 0.8 * peaks[times[0]]))
    seed = (0, *map(int, coords[0]))
    tracker = FeatureTracker(opacity_threshold=0.1)

    # --- Fixed criterion: the value band that captures the feature at t0.
    p0 = peaks[times[0]]
    fixed = tracker.track_fixed(sequence, seed, lo=0.45 * p0, hi=1.1 * p0)

    # --- Adaptive criterion: two key frames; the user decreases the
    # tracked value range at the last key frame (the Fig. 10 interaction).
    iatf = AdaptiveTransferFunction.for_sequence(sequence, seed=3)
    for t in (times[0], times[-1]):
        peak = peaks[t]
        tf = TransferFunction1D(sequence.value_range).add_tent(0.75 * peak, 0.9 * peak, 1.0)
        iatf.add_key_frame(sequence.at_time(t), tf)
    iatf.train(epochs=300)
    adaptive = tracker.track_adaptive(sequence, seed, iatf)

    print(f"\n{'step':>6} {'fixed':>8} {'adaptive':>9}   (tracked voxels)")
    for i, t in enumerate(times):
        print(f"{t:>6} {fixed.voxel_counts[i]:>8} {adaptive.voxel_counts[i]:>9}")

    truth = [v.mask("feature") for v in sequence]
    print(f"\ncontinuity: fixed={tracking_continuity(fixed.masks, truth, min_voxels=10):.2f} "
          f"adaptive={tracking_continuity(adaptive.masks, truth, min_voxels=10):.2f}")
    print("The fixed criterion loses the feature (0 voxels at the end); the "
          "adaptive criterion tracks it throughout — the Fig. 10 result.")

    context = TransferFunction1D(
        sequence.value_range, colormap=grayscale_colormap()
    ).add_box(0.1, sequence.value_range[1], 0.05)
    camera = Camera(azimuth=30, elevation=30, width=140, height=140)
    for i, t in enumerate((times[0], times[len(times) // 2], times[-1])):
        vol = sequence.at_time(t)
        idx = times.index(t)
        render_tracked(vol, fixed.masks[idx], context, camera=camera).save_ppm(
            OUT / f"fixed_t{t}.ppm")
        render_tracked(vol, adaptive.masks[idx], context, camera=camera).save_ppm(
            OUT / f"adaptive_t{t}.ppm")
    print(f"Highlight renders written to {OUT}/")


if __name__ == "__main__":
    main()
