"""Shared fixtures: small deterministic datasets reused across test modules.

Session-scoped so the procedural generators run once; tests must treat
fixture volumes as read-only (copy before mutating).
"""

import numpy as np
import pytest

from repro.data import (
    make_argon_sequence,
    make_combustion_sequence,
    make_cosmology_sequence,
    make_fast_vortex_sequence,
    make_swirl_sequence,
    make_vortex_sequence,
)

try:
    from hypothesis import settings as _hyp_settings
except ImportError:  # pragma: no cover - hypothesis is a test-only dep
    pass
else:
    # Shared CI profile: the 3.10–3.13 matrix legs run every module under a
    # fixed timeout-minutes budget, so example counts are capped there
    # (`pytest --hypothesis-profile=ci`) while local runs keep the default
    # thoroughness.  Registered here once so every property module shares
    # one definition instead of sprinkling per-test @settings overrides.
    _hyp_settings.register_profile("ci", max_examples=25, deadline=None)


@pytest.fixture(scope="session")
def argon_small():
    return make_argon_sequence(shape=(24, 32, 32), times=[195, 210, 225, 240, 255], seed=7)


@pytest.fixture(scope="session")
def combustion_small():
    return make_combustion_sequence(shape=(16, 48, 32), times=[8, 36, 64, 92, 128], seed=11)


@pytest.fixture(scope="session")
def cosmology_small():
    return make_cosmology_sequence(shape=(32, 32, 32), times=[130, 250, 310], seed=23, n_blobs=80)


@pytest.fixture(scope="session")
def vortex_small():
    return make_vortex_sequence(shape=(32, 32, 32), times=list(range(50, 75, 4)), seed=31)


@pytest.fixture(scope="session")
def fast_vortex_small():
    return make_fast_vortex_sequence(shape=(48, 48, 48), seed=47)


@pytest.fixture(scope="session")
def swirl_small():
    return make_swirl_sequence(shape=(28, 28, 28), times=[23, 29, 35, 41, 48, 55, 62], seed=43)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
