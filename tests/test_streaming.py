"""Tests for repro.parallel.streaming: out-of-core per-step processing."""

import numpy as np
import pytest

from repro.data import make_argon_sequence
from repro.obs import get_metrics
from repro.parallel.streaming import (
    prefetch_map,
    sequence_step_stems,
    stream_map,
    stream_map_parallel,
)
from repro.volume.io import save_sequence


def mean_value(volume):
    return float(volume.data.mean())


@pytest.fixture(scope="module")
def saved_sequence(tmp_path_factory):
    directory = tmp_path_factory.mktemp("stream") / "argon"
    sequence = make_argon_sequence(shape=(12, 16, 16), times=[195, 205, 215, 225])
    save_sequence(sequence, directory)
    return directory, sequence


class TestStepStems:
    def test_lists_all_steps(self, saved_sequence):
        directory, sequence = saved_sequence
        stems = sequence_step_stems(directory)
        assert [t for t, _ in stems] == sequence.times


class TestStreamMap:
    def test_results_match_in_core(self, saved_sequence):
        directory, sequence = saved_sequence
        streamed = dict(stream_map(mean_value, directory))
        for vol in sequence:
            assert streamed[vol.time] == pytest.approx(float(vol.data.mean()))

    def test_time_filter(self, saved_sequence):
        directory, _ = saved_sequence
        out = list(stream_map(mean_value, directory, times=[205, 225]))
        assert [t for t, _ in out] == [205, 225]

    def test_lazy_generator(self, saved_sequence):
        directory, _ = saved_sequence
        gen = stream_map(mean_value, directory)
        first = next(gen)
        assert first[0] == 195

    def test_mmap_path(self, saved_sequence):
        directory, sequence = saved_sequence
        out = dict(stream_map(mean_value, directory, mmap=True))
        assert out[195] == pytest.approx(float(sequence[0].data.mean()))


class TestStreamMapParallel:
    def test_matches_serial(self, saved_sequence):
        directory, _ = saved_sequence
        serial = dict(stream_map(mean_value, directory))
        parallel = dict(stream_map_parallel(mean_value, directory,
                                            workers=2, backend="process"))
        assert serial.keys() == parallel.keys()
        for t in serial:
            assert serial[t] == pytest.approx(parallel[t])

    def test_order_preserved(self, saved_sequence):
        directory, sequence = saved_sequence
        out = stream_map_parallel(mean_value, directory, workers=2, backend="process")
        assert [t for t, _ in out] == sequence.times

    def test_time_filter(self, saved_sequence):
        directory, _ = saved_sequence
        out = stream_map_parallel(mean_value, directory, times=[215], backend="serial")
        assert [t for t, _ in out] == [215]

    def test_manifest_read_exactly_once(self, saved_sequence, monkeypatch):
        """Items and returned times derive from a single manifest parse, so
        a directory rewritten mid-call cannot desync them."""
        import repro.parallel.streaming as streaming

        calls = []
        real = streaming.sequence_step_stems

        def counting(directory, times=None):
            calls.append(directory)
            return real(directory, times=times)

        directory, sequence = saved_sequence
        monkeypatch.setattr(streaming, "sequence_step_stems", counting)
        out = stream_map_parallel(mean_value, directory, backend="serial")
        assert len(calls) == 1
        assert [t for t, _ in out] == sequence.times

    def test_skip_mode_yields_none_for_failed_step(self, saved_sequence, monkeypatch):
        """Chaos-testing via REPRO_FAULT_INJECT reaches the streaming farm:
        the faulted step's slot is None, the rest stream through."""
        from repro.parallel.faults import FAULT_ENV

        directory, sequence = saved_sequence
        monkeypatch.setenv(FAULT_ENV, "1:99")
        out = stream_map_parallel(mean_value, directory, backend="serial",
                                  on_error="skip")
        assert [t for t, _ in out] == sequence.times
        results = [r for _, r in out]
        assert results[1] is None
        assert all(r is not None for i, r in enumerate(results) if i != 1)

    def test_with_trained_classifier(self, saved_sequence, cosmology_small):
        """The real workload: ship a trained classifier over disk steps."""
        directory, sequence = saved_sequence
        from repro.core import AdaptiveTransferFunction, generate_sequence_tfs
        from repro.data.argon import ring_value_band
        from repro.transfer import TransferFunction1D

        iatf = AdaptiveTransferFunction.for_sequence(sequence, seed=3, committee=2)
        for t in (195, 225):
            lo, hi = ring_value_band(sequence, t)
            tf = TransferFunction1D(sequence.value_range).add_tent(
                (lo + hi) / 2, (hi - lo) * 2.5, 1.0)
            iatf.add_key_frame(sequence.at_time(t), tf)
        iatf.train(epochs=100)

        out = stream_map_parallel(iatf.generate, directory, workers=2, backend="process")
        in_core = generate_sequence_tfs(iatf, sequence, backend="serial")
        for (t, tf_streamed), tf_ref in zip(out, in_core):
            assert np.allclose(tf_streamed.opacity, tf_ref.opacity)


class TestPrefetchMap:
    def test_results_in_order(self):
        assert list(prefetch_map(lambda x: x * x, range(7))) == [
            0, 1, 4, 9, 16, 25, 36]

    def test_empty_items(self):
        assert list(prefetch_map(lambda x: x, [])) == []

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError, match="depth"):
            prefetch_map(lambda x: x, [1, 2], depth=0)

    def test_lookahead_bounded_by_depth(self):
        """The producer never runs more than ``depth`` items past a pull."""
        import time

        started = []

        def fn(item):
            started.append(item)
            return item

        it = prefetch_map(fn, range(10), depth=2)
        time.sleep(0.2)  # producer free-runs until its tickets are spent
        assert len(started) <= 2
        assert next(it) == 0
        time.sleep(0.2)
        assert len(started) <= 3
        assert list(it) == list(range(1, 10))

    def test_exception_reraises_at_matching_pull(self):
        def fn(item):
            if item == 2:
                raise RuntimeError("boom at 2")
            return item

        it = prefetch_map(fn, range(5))
        assert next(it) == 0
        assert next(it) == 1
        with pytest.raises(RuntimeError, match="boom at 2"):
            next(it)
        # The stream is dead after the error, not resumed past it.
        with pytest.raises(StopIteration):
            next(it)

    def test_abandonment_stops_producer(self):
        calls = []
        it = prefetch_map(lambda x: calls.append(x) or x, range(100), depth=1)
        assert next(it) == 0
        it.close()
        it._producer.join(timeout=5.0)
        assert not it._producer.is_alive()
        assert len(calls) < 100

    def test_prefetched_counter_increments(self):
        metrics = get_metrics()
        before = metrics.counter_values().get("stream.prefetched", 0)
        list(prefetch_map(lambda x: x, range(4)))
        after = metrics.counter_values().get("stream.prefetched", 0)
        assert after - before == 4

    def test_no_reference_retained_after_pull(self):
        """A delivered result is collectable once the consumer drops it."""
        import weakref

        class Payload:
            pass

        it = prefetch_map(lambda _: Payload(), [1, 2])
        first = next(it)
        ref = weakref.ref(first)
        next(it)  # the whole stream is drained; nothing in flight
        del first
        assert ref() is None
