"""Piecewise-linear colormaps.

Colormaps map a normalized scalar coordinate in [0, 1] to RGB.  The paper
keeps the color assignment fixed to the data value across a whole sequence
("Shifting the assignment of colors could … give a misleading indication",
Sec. 7) — so colormaps here are immutable, shared objects, and only the
opacity channel of a transfer function is ever learned.
"""

from __future__ import annotations

import numpy as np


class Colormap:
    """Immutable piecewise-linear RGB colormap.

    Parameters
    ----------
    positions:
        Increasing control positions in [0, 1]; first must be 0, last 1.
    colors:
        One RGB triple (components in [0, 1]) per position.
    """

    def __init__(self, positions, colors) -> None:
        positions = np.asarray(positions, dtype=np.float64)
        colors = np.asarray(colors, dtype=np.float64)
        if positions.ndim != 1 or len(positions) < 2:
            raise ValueError("need at least two control positions")
        if colors.shape != (len(positions), 3):
            raise ValueError(
                f"colors must have shape ({len(positions)}, 3), got {colors.shape}"
            )
        if positions[0] != 0.0 or positions[-1] != 1.0:
            raise ValueError("positions must start at 0.0 and end at 1.0")
        if np.any(np.diff(positions) <= 0):
            raise ValueError("positions must be strictly increasing")
        if colors.min() < 0.0 or colors.max() > 1.0:
            raise ValueError("color components must lie in [0, 1]")
        self._positions = positions
        self._positions.setflags(write=False)
        self._colors = colors
        self._colors.setflags(write=False)

    def __call__(self, coords) -> np.ndarray:
        """Map coordinates in [0, 1] (clipped) to RGB; output shape ``coords.shape + (3,)``."""
        coords = np.clip(np.asarray(coords, dtype=np.float64), 0.0, 1.0)
        out = np.empty(coords.shape + (3,), dtype=np.float32)
        for c in range(3):
            out[..., c] = np.interp(coords, self._positions, self._colors[:, c])
        return out

    def table(self, entries: int = 256) -> np.ndarray:
        """Sampled lookup table of shape ``(entries, 3)``."""
        return self(np.linspace(0.0, 1.0, entries))


def default_flow_colormap() -> Colormap:
    """Blue → cyan → green → yellow → red ramp, the classic flow-vis map.

    Matches the rainbow-style maps in the paper's figures (value encodes
    physical magnitude; hue communicates it).
    """
    return Colormap(
        positions=[0.0, 0.25, 0.5, 0.75, 1.0],
        colors=[
            (0.05, 0.05, 0.60),
            (0.00, 0.70, 0.90),
            (0.10, 0.80, 0.20),
            (0.95, 0.85, 0.10),
            (0.85, 0.10, 0.05),
        ],
    )


def grayscale_colormap() -> Colormap:
    """Black-to-white ramp, used by slice views and tests."""
    return Colormap(positions=[0.0, 1.0], colors=[(0, 0, 0), (1, 1, 1)])
