"""Crash-safe resumable pipeline runs (content-addressed artifact store).

Public surface:

- :class:`~repro.run.config.RunConfig` — validated run description;
- :class:`~repro.run.store.ArtifactStore` / :func:`~repro.run.store.derive_key`
  — input-addressed, integrity-verified artifact persistence;
- :class:`~repro.run.manifest.RunManifest` — deterministic progress record;
- :class:`~repro.run.runner.PipelineRunner` — the memoized stage walk
  behind ``repro run`` / ``repro run --resume``.
"""

from repro.run.config import STAGE_ORDER, ConfigError, RunConfig
from repro.run.manifest import ManifestError, RunManifest, StageRecord
from repro.run.runner import PipelineRunner, RunError, RunReport
from repro.run.store import ArtifactStore, IntegrityError, derive_key

__all__ = [
    "STAGE_ORDER",
    "ArtifactStore",
    "ConfigError",
    "IntegrityError",
    "ManifestError",
    "PipelineRunner",
    "RunConfig",
    "RunError",
    "RunManifest",
    "RunReport",
    "StageRecord",
    "derive_key",
]
