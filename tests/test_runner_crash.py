"""SIGKILL crash-recovery battery for the resumable runner.

Each case launches ``repro run`` as a subprocess with
``REPRO_FAULT_INJECT="N:crash"`` so the process is hard-killed (no
``finally``, no ``atexit`` — simulated node loss) the moment the run's
N-th task starts, then resumes with ``repro run --resume`` and asserts:

- the crashed process died from SIGKILL (returncode -9);
- the resumed run completes and its manifest, config, and every store
  artifact are **byte-identical** to an uninterrupted reference run;
- the resume skipped exactly the work whose artifacts the crashed run
  had already persisted (verified through the stats.json obs counters).

Crash points cover every stage boundary (0 = first classify task,
4 = track, 5 = first tfs task, 8 = first render task) and mid-stage
kills (2 = second classify step, 6 = second tfs step, 9 = second
render step) for the 3-step full-DAG task layout:

    0 train · 1-3 classify · 4 track · 5-7 tfs · 8-10 render

A second battery repeats the exercise for ``--pipelined`` dataflow
scheduling, where the execution order interleaves stages per step:

    0 train · 1 c0 · 2 tf0 · 3 r0 · 4 c1 · 5 r1 · 6 c2 · 7 r2 · 8 track

(tf1/tf2 never execute in a cold pipelined run: the static box TF is
one shared content-addressed artifact, already stored by tf0 before
the later tf tasks are even considered).  Crashed pipelined runs must
resume bit-identically under either scheduler and with a worker pool.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.data import make_argon_sequence
from repro.parallel.faults import FAULT_ENV
from repro.volume.io import save_sequence

TOTAL_TASKS = 11

# crash point -> tasks the resume must skip.  Mostly the crash index
# itself (tasks 0..N-1 persisted); mid-tfs (N=6) skips all three tf
# tasks because the static box TF is one shared content-addressed
# artifact, already stored by the first tf task.
EXPECTED_SKIPS = {0: 0, 2: 2, 4: 4, 5: 5, 6: 8, 8: 8, 9: 9}


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    """A saved tiny sequence, its run config, and a completed reference run."""
    root = tmp_path_factory.mktemp("crash")
    sequence = make_argon_sequence(shape=(12, 14, 14), times=[195, 210, 225])
    save_sequence(sequence, root / "argon")
    z, y, x = (int(v) for v in np.argwhere(sequence[0].mask("ring"))[0])
    config = {
        "sequence": str(root / "argon"),
        "stages": ["classify", "track", "tfs", "render"],
        "classify": {"mask": "ring", "train_steps": [195], "samples": 25,
                     "epochs": 25, "hidden": 8, "mode": "fast"},
        "track": {"criterion": "classify", "seed_voxel": [0, z, y, x]},
        "render": {"size": 16},
    }
    (root / "config.json").write_text(json.dumps(config))
    reference = root / "reference"
    result = _run_cli(["run", str(root / "config.json"), "--out", str(reference)])
    assert result.returncode == 0, result.stderr
    stats = json.loads((reference / "stats.json").read_text())
    assert stats["executed"] == TOTAL_TASKS and stats["skipped"] == 0
    return root, reference


def _run_cli(argv, fault_spec=None):
    env = dict(os.environ)
    env.pop(FAULT_ENV, None)
    if fault_spec is not None:
        env[FAULT_ENV] = fault_spec
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        env=env, capture_output=True, text=True, timeout=300,
    )


def _store_files(run_dir):
    return sorted(p.name for p in (run_dir / "store").iterdir())


def _assert_bit_identical(run_dir, reference):
    for rel in ("manifest.json", "config.json"):
        assert ((run_dir / rel).read_bytes() == (reference / rel).read_bytes()), (
            f"{rel} of the resumed run differs from the uninterrupted run")
    assert _store_files(run_dir) == _store_files(reference)
    for name in _store_files(reference):
        assert ((run_dir / "store" / name).read_bytes()
                == (reference / "store" / name).read_bytes()), (
            f"store artifact {name} differs from the uninterrupted run")


@pytest.mark.parametrize("crash_at", sorted(EXPECTED_SKIPS))
def test_sigkill_then_resume_is_bit_identical(workload, tmp_path, crash_at):
    root, reference = workload
    run_dir = tmp_path / f"crash{crash_at}"

    crashed = _run_cli(["run", str(root / "config.json"), "--out", str(run_dir)],
                       fault_spec=f"{crash_at}:crash")
    assert crashed.returncode == -9, (
        f"expected SIGKILL death, got rc={crashed.returncode}: {crashed.stderr}")
    # The kill happened before the run finished: no complete marker.
    assert not (run_dir / "stats.json").exists()

    resumed = _run_cli(["run", "--resume", str(run_dir)])
    assert resumed.returncode == 0, resumed.stderr

    _assert_bit_identical(run_dir, reference)
    stats = json.loads((run_dir / "stats.json").read_text())
    assert stats["skipped"] == EXPECTED_SKIPS[crash_at]
    assert stats["executed"] == TOTAL_TASKS - EXPECTED_SKIPS[crash_at]
    assert stats["counters"].get("run.tasks.skipped", 0) == stats["skipped"]


def test_double_crash_then_resume(workload, tmp_path):
    """Two successive node losses at different points still converge."""
    root, reference = workload
    run_dir = tmp_path / "double"
    first = _run_cli(["run", str(root / "config.json"), "--out", str(run_dir)],
                     fault_spec="2:crash")
    assert first.returncode == -9
    # After the first crash 2 tasks persisted; resume numbering restarts
    # at 0 for the remaining 9 tasks, so task 3 here is the 6th overall.
    second = _run_cli(["run", "--resume", str(run_dir)], fault_spec="3:crash")
    assert second.returncode == -9
    final = _run_cli(["run", "--resume", str(run_dir)])
    assert final.returncode == 0, final.stderr
    _assert_bit_identical(run_dir, reference)


# Pipelined serial execution order: 0 train, 1 c0, 2 tf0, 3 r0, 4 c1,
# 5 r1, 6 c2, 7 r2, 8 track (9 executed, 2 skipped cold).  Crash point
# (an execution index) -> tasks a pipelined resume must skip: the crash
# index itself, plus tf1/tf2 once tf0's shared box-TF artifact exists.
PIPELINED_EXPECTED_SKIPS = {0: 2, 2: 4, 3: 5, 5: 7, 8: 10}


def test_pipelined_cold_run_matches_barrier(workload, tmp_path):
    """Dataflow scheduling changes the execution order and the executed
    count (shared TF artifacts are skipped lazily), not one output byte."""
    root, reference = workload
    run_dir = tmp_path / "pipelined"
    result = _run_cli(["run", str(root / "config.json"), "--out", str(run_dir),
                       "--pipelined"])
    assert result.returncode == 0, result.stderr
    _assert_bit_identical(run_dir, reference)
    stats = json.loads((run_dir / "stats.json").read_text())
    assert stats["executed"] == 9 and stats["skipped"] == 2


@pytest.mark.parametrize("crash_at", sorted(PIPELINED_EXPECTED_SKIPS))
def test_pipelined_sigkill_then_resume(workload, tmp_path, crash_at):
    root, reference = workload
    run_dir = tmp_path / f"pcrash{crash_at}"

    crashed = _run_cli(["run", str(root / "config.json"), "--out", str(run_dir),
                        "--pipelined"], fault_spec=f"{crash_at}:crash")
    assert crashed.returncode == -9, (
        f"expected SIGKILL death, got rc={crashed.returncode}: {crashed.stderr}")
    assert not (run_dir / "stats.json").exists()

    resumed = _run_cli(["run", "--resume", str(run_dir), "--pipelined"])
    assert resumed.returncode == 0, resumed.stderr

    _assert_bit_identical(run_dir, reference)
    stats = json.loads((run_dir / "stats.json").read_text())
    assert stats["skipped"] == PIPELINED_EXPECTED_SKIPS[crash_at]
    assert stats["executed"] == TOTAL_TASKS - PIPELINED_EXPECTED_SKIPS[crash_at]


def test_pipelined_crash_resumes_with_worker_pool(workload, tmp_path):
    """A crashed pipelined run resumes onto a persistent 2-worker pool."""
    root, reference = workload
    run_dir = tmp_path / "pool_resume"
    crashed = _run_cli(["run", str(root / "config.json"), "--out", str(run_dir),
                        "--pipelined"], fault_spec="3:crash")
    assert crashed.returncode == -9
    resumed = _run_cli(["run", "--resume", str(run_dir), "--pipelined",
                        "--workers", "2"])
    assert resumed.returncode == 0, resumed.stderr
    _assert_bit_identical(run_dir, reference)
    # Skip decisions happen at submission time in the parent, so the
    # counts stay deterministic even with two workers racing.
    stats = json.loads((run_dir / "stats.json").read_text())
    assert stats["skipped"] == 5 and stats["executed"] == 6


def test_barrier_resume_of_pipelined_crash(workload, tmp_path):
    """Schedulers are interchangeable across a crash: a run started
    pipelined can resume under barrier scheduling (and vice versa) —
    the store only sees content-addressed artifacts."""
    root, reference = workload
    run_dir = tmp_path / "cross"
    crashed = _run_cli(["run", str(root / "config.json"), "--out", str(run_dir),
                        "--pipelined"], fault_spec="5:crash")
    assert crashed.returncode == -9
    resumed = _run_cli(["run", "--resume", str(run_dir)])
    assert resumed.returncode == 0, resumed.stderr
    _assert_bit_identical(run_dir, reference)


def test_crash_spec_is_inert_for_completed_run(workload, tmp_path):
    """Resuming a complete run executes nothing, so no task ever reaches
    the crash schedule — the run survives an armed injector."""
    root, reference = workload
    result = _run_cli(["run", "--resume", str(reference)], fault_spec="0:crash")
    assert result.returncode == 0, result.stderr
    stats = json.loads((reference / "stats.json").read_text())
    assert stats["executed"] == 0 and stats["skipped"] == TOTAL_TASKS
