"""Transfer-function substrate.

Direct volume rendering maps scalar values to color and opacity through a
1D transfer function (paper Sec. 4.1).  This package provides:

- :mod:`repro.transfer.colormap` — piecewise-linear colormaps.  Per paper
  Sec. 7, color always encodes the raw data value; the learning machinery
  only ever modifies *opacity*.
- :mod:`repro.transfer.tf1d` — :class:`TransferFunction1D` with tent/box
  opacity primitives, evaluation over volumes, linear interpolation between
  two TFs (the Fig. 3 baseline), and (de)serialization.
"""

from repro.transfer.colormap import Colormap, default_flow_colormap, grayscale_colormap
from repro.transfer.tf1d import (
    TransferFunction1D,
    interpolate_transfer_functions,
)

__all__ = [
    "Colormap",
    "TransferFunction1D",
    "default_flow_colormap",
    "grayscale_colormap",
    "interpolate_transfer_functions",
]
