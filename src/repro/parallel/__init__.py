"""Parallel and out-of-core execution substrate.

The paper's large-data story has two halves this package reproduces:

- *"the processing of each time step is completely independent of other
  time steps, it is feasible and desirable to employ a large PC cluster"*
  (Sec. 8) — :mod:`repro.parallel.executor` is that per-timestep task farm:
  ``multiprocessing`` with a deterministic serial fallback, per-task retry
  with exponential backoff and timeouts, structured :class:`TaskError`
  failures (or an ``on_error="skip"`` degraded mode), deterministic fault
  injection for CI (:mod:`repro.parallel.faults`), and shared-memory
  volume transport so big steps are not pickled per task
  (:mod:`repro.parallel.shm`).
- *"when the volume size is large … not all the data can fit in core"*
  (Sec. 4.2.2) — :mod:`repro.parallel.bricking` decomposes volumes into
  ghost-padded bricks for streaming.
"""

from repro.parallel.bricking import (
    Brick,
    assemble_bricks,
    axis_chunks,
    content_digest,
    iter_bricks,
    split_bricks,
)
from repro.parallel.executor import (
    MapResult,
    RetryPolicy,
    TaskError,
    TaskFailure,
    TimestepExecutor,
    map_timesteps,
    will_use_processes,
)
from repro.parallel.faults import FaultInjector, InjectedFault, parse_fault_spec
from repro.parallel.pool import BroadcastRef, PoolError, PoolFuture, WorkerPool
from repro.parallel.shm import (
    HAS_SHARED_MEMORY,
    OpenSharedVolume,
    SharedVolumeArena,
    SharedVolumeHandle,
)
from repro.parallel.streaming import sequence_step_stems, stream_map, stream_map_parallel

__all__ = [
    "Brick",
    "BroadcastRef",
    "FaultInjector",
    "HAS_SHARED_MEMORY",
    "InjectedFault",
    "MapResult",
    "OpenSharedVolume",
    "PoolError",
    "PoolFuture",
    "RetryPolicy",
    "SharedVolumeArena",
    "SharedVolumeHandle",
    "TaskError",
    "TaskFailure",
    "TimestepExecutor",
    "WorkerPool",
    "assemble_bricks",
    "axis_chunks",
    "content_digest",
    "iter_bricks",
    "map_timesteps",
    "parse_fault_spec",
    "sequence_step_stems",
    "split_bricks",
    "stream_map",
    "stream_map_parallel",
    "will_use_processes",
]
