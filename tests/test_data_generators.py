"""Tests for repro.data: the synthetic dataset generators.

Each generator must exhibit the data property its figure depends on
(DESIGN.md §1); these tests pin those properties down.
"""

import numpy as np
import pytest

from repro.data import (
    make_argon_sequence,
    make_combustion_sequence,
    make_cosmology_sequence,
    make_swirl_sequence,
    make_vortex_sequence,
)
from repro.data import fields
from repro.data.argon import ring_value_at
from repro.data.swirl import feature_peak_at
from repro.segmentation import label_components


class TestFields:
    def test_coordinate_grids_range(self):
        Z, Y, X = fields.coordinate_grids((4, 6, 8))
        assert Z.shape == (4, 6, 8)
        assert 0 < Z.min() < Z.max() < 1

    def test_gaussian_blob_peak_at_center(self):
        grids = fields.coordinate_grids((16, 16, 16))
        blob = fields.gaussian_blob(grids, (0.5, 0.5, 0.5), 0.1)
        assert blob.max() == blob[8, 8, 8]
        assert blob[0, 0, 0] < 0.01

    def test_gaussian_blob_sigma_validated(self):
        grids = fields.coordinate_grids((4, 4, 4))
        with pytest.raises(ValueError):
            fields.gaussian_blob(grids, (0.5, 0.5, 0.5), 0.0)

    def test_torus_field_ring_shape(self):
        grids = fields.coordinate_grids((32, 32, 32))
        torus = fields.torus_field(grids, (0.5, 0.5, 0.5), 0.25, 0.05, axis=2)
        # strong on the ring circle, weak at center and far corner
        assert torus[16, 24, 16] > 0.9  # y offset = major radius
        assert torus[16, 16, 16] < 0.05  # center hole
        assert torus[0, 0, 0] < 0.01

    def test_tube_field_along_segment(self):
        grids = fields.coordinate_grids((24, 24, 24))
        pts = [(0.2, 0.5, 0.5), (0.8, 0.5, 0.5)]
        tube = fields.tube_field(grids, pts, 0.06)
        assert tube[12, 12, 12] > 0.85  # on the axis (voxel center slightly off)
        assert tube[12, 2, 2] < 0.01

    def test_tube_field_validation(self):
        grids = fields.coordinate_grids((4, 4, 4))
        with pytest.raises(ValueError):
            fields.tube_field(grids, [(0.5, 0.5, 0.5)], 0.1)  # one point
        with pytest.raises(ValueError):
            fields.tube_field(grids, [(0, 0, 0), (1, 1, 1)], 0.0)

    def test_smooth_noise_range_and_determinism(self):
        a = fields.smooth_noise((8, 8, 8), seed=5)
        b = fields.smooth_noise((8, 8, 8), seed=5)
        assert np.array_equal(a, b)
        assert a.min() == pytest.approx(0.0)
        assert a.max() == pytest.approx(1.0)

    def test_scatter_blobs_count(self):
        grids = fields.coordinate_grids((20, 20, 20))
        centers = [(0.25, 0.25, 0.25), (0.75, 0.75, 0.75)]
        out = fields.scatter_blobs(grids, centers, 0.05)
        labels, n = label_components(out > 0.5)
        assert n == 2

    def test_scatter_blobs_validation(self):
        grids = fields.coordinate_grids((4, 4, 4))
        with pytest.raises(ValueError):
            fields.scatter_blobs(grids, [(0.5, 0.5)], 0.1)


class TestArgon:
    def test_deterministic(self):
        a = make_argon_sequence(shape=(16, 20, 20), times=[195, 255], seed=3)
        b = make_argon_sequence(shape=(16, 20, 20), times=[195, 255], seed=3)
        assert np.array_equal(a[0].data, b[0].data)

    def test_ring_value_drifts(self, argon_small):
        v0 = ring_value_at(argon_small, 195)
        v1 = ring_value_at(argon_small, 255)
        assert v1 - v0 > 0.2

    def test_ring_mask_nonempty_every_step(self, argon_small):
        for vol in argon_small:
            assert vol.mask("ring").sum() > 50

    def test_ring_moves_spatially(self, argon_small):
        from repro.segmentation import feature_attributes, label_components

        def centroid_x(vol):
            labels, n = label_components(vol.mask("ring"))
            attrs = feature_attributes(labels, n)
            biggest = max(attrs, key=lambda a: a.voxels)
            return biggest.centroid[2]

        assert centroid_x(argon_small.at_time(255)) > centroid_x(argon_small.at_time(195)) + 3

    def test_value_range_shifts_over_time(self, argon_small):
        lo0, hi0 = argon_small.at_time(195).value_range
        lo1, hi1 = argon_small.at_time(255).value_range
        assert lo1 > lo0 + 0.2  # the whole range moved up


class TestCombustion:
    def test_vorticity_range_grows(self, combustion_small):
        first = combustion_small.at_time(8).value_range[1]
        last = combustion_small.at_time(128).value_range[1]
        assert last > 2.0 * first

    def test_mixing_layer_mask_present(self, combustion_small):
        for vol in combustion_small:
            frac = vol.mask("mixing_layer").mean()
            assert 0.02 < frac < 0.8

    def test_vorticity_concentrated_in_layer(self, combustion_small):
        vol = combustion_small.at_time(64)
        layer = vol.mask("mixing_layer")
        assert vol.data[layer].mean() > 2.0 * vol.data[~layer].mean()

    def test_nonnegative(self, combustion_small):
        for vol in combustion_small:
            assert vol.data.min() >= 0.0


class TestCosmology:
    def test_masks_disjoint(self, cosmology_small):
        for vol in cosmology_small:
            assert not (vol.mask("large") & vol.mask("small")).any()

    def test_value_overlap_between_sizes(self, cosmology_small):
        """Tiny blobs share the large structures' value range — the reason
        a 1D TF cannot separate them (Fig. 7)."""
        vol = cosmology_small.at_time(310)
        large_vals = vol.data[vol.mask("large")]
        small_vals = vol.data[vol.mask("small")]
        lo = max(np.quantile(large_vals, 0.25), np.quantile(small_vals, 0.25))
        hi = min(np.quantile(large_vals, 0.75), np.quantile(small_vals, 0.75))
        assert hi > lo  # interquartile ranges overlap

    def test_many_small_features(self, cosmology_small):
        vol = cosmology_small.at_time(310)
        labels, n = label_components(vol.mask("small"))
        assert n > 20

    def test_large_structures_persist_small_reshuffle(self, cosmology_small):
        a = cosmology_small.at_time(130)
        b = cosmology_small.at_time(310)
        from repro.metrics import jaccard

        assert jaccard(a.mask("large"), b.mask("large")) > 0.3
        assert jaccard(a.mask("small"), b.mask("small")) < 0.2


class TestVortex:
    def test_single_component_before_split(self, vortex_small):
        vol = vortex_small.at_time(54)
        labels, n = label_components(vol.mask("vortex"))
        assert n == 1

    def test_two_components_after_split(self, vortex_small):
        vol = vortex_small.at_time(74)
        labels, n = label_components(vol.mask("vortex"))
        assert n == 2

    def test_consecutive_steps_overlap(self, vortex_small):
        """The Sec. 5 tracking assumption: matching features overlap in 3D."""
        for a, b in zip(list(vortex_small)[:-1], list(vortex_small)[1:]):
            assert (a.mask("vortex") & b.mask("vortex")).sum() > 10

    def test_vortex_translates(self, vortex_small):
        from repro.segmentation import feature_attributes, label_components

        def cx(vol):
            labels, n = label_components(vol.mask("vortex"))
            attrs = feature_attributes(labels, n)
            return max(attrs, key=lambda a: a.voxels).centroid[2]

        assert cx(vortex_small.at_time(74)) > cx(vortex_small.at_time(50)) + 5


class TestSwirl:
    def test_peak_decays(self, swirl_small):
        p0 = feature_peak_at(swirl_small, 23)
        p1 = feature_peak_at(swirl_small, 62)
        assert p1 < 0.6 * p0

    def test_feature_mask_persists(self, swirl_small):
        for vol in swirl_small:
            assert vol.mask("feature").sum() > 100

    def test_fixed_threshold_eventually_fails(self, swirl_small):
        """A criterion fixed at the initial value range loses the feature —
        the Fig. 10 setup."""
        p0 = feature_peak_at(swirl_small, 23)
        threshold = 0.7 * p0
        last = swirl_small.at_time(62)
        above = (last.data > threshold) & last.mask("feature")
        assert above.sum() == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            make_swirl_sequence(peak_start=0.3, peak_end=0.5)

    def test_consecutive_overlap(self, swirl_small):
        for a, b in zip(list(swirl_small)[:-1], list(swirl_small)[1:]):
            assert (a.mask("feature") & b.mask("feature")).sum() > 10
