"""Orthographic camera for the software ray caster.

A camera is a view direction (azimuth/elevation around the volume center)
plus an image resolution.  Rays are parallel to the view direction and pass
through a view-plane pixel grid sized to the volume's bounding sphere, so
every orientation keeps the whole volume in frame — matching the paper's
view-aligned-slices setup where the proxy geometry always covers the data.

All geometry is computed in voxel index space (z, y, x floats) — the same
space :func:`scipy.ndimage.map_coordinates` samples in — which avoids a
separate world-to-texture transform.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Camera:
    """Camera orbiting the volume center (orthographic or perspective).

    Parameters
    ----------
    azimuth, elevation:
        View direction angles in degrees.  Azimuth rotates in the x–y
        plane; elevation lifts toward +z.  (0, 0) looks along +x.
    width, height:
        Image resolution in pixels (the paper's window is 512×512).
    zoom:
        >1 magnifies (narrows the view-plane extent / field of view).
    projection:
        ``"orthographic"`` (parallel rays, the view-aligned-slices
        equivalent) or ``"perspective"`` (rays diverge from an eye point
        at ``eye_distance`` bounding-sphere radii from the center).
    eye_distance:
        Perspective eye distance in units of the volume's bounding-sphere
        radius (must exceed 1 so the eye is outside the data).
    """

    azimuth: float = 30.0
    elevation: float = 20.0
    width: int = 128
    height: int = 128
    zoom: float = 1.0
    projection: str = "orthographic"
    eye_distance: float = 3.0

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"image size must be positive, got {self.width}x{self.height}")
        if self.zoom <= 0:
            raise ValueError(f"zoom must be positive, got {self.zoom}")
        if self.projection not in ("orthographic", "perspective"):
            raise ValueError(
                f"projection must be 'orthographic' or 'perspective', got {self.projection!r}"
            )
        if self.projection == "perspective" and self.eye_distance <= 1.0:
            raise ValueError(
                f"eye_distance must exceed 1 bounding radius, got {self.eye_distance}"
            )

    def basis(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(forward, right, up)`` unit vectors in (z, y, x) order."""
        az = np.deg2rad(self.azimuth)
        el = np.deg2rad(self.elevation)
        # Physical direction (x, y, z) then reorder to grid (z, y, x).
        fx = np.cos(el) * np.cos(az)
        fy = np.cos(el) * np.sin(az)
        fz = np.sin(el)
        forward = np.array([fz, fy, fx], dtype=np.float64)
        forward /= np.linalg.norm(forward)
        world_up = np.array([1.0, 0.0, 0.0])  # +z in grid order
        if abs(np.dot(forward, world_up)) > 0.999:
            world_up = np.array([0.0, 1.0, 0.0])
        right = np.cross(world_up, forward)
        right /= np.linalg.norm(right)
        up = np.cross(forward, right)
        return forward, right, up

    def ray_grid(self, shape, step: float = 1.0):
        """Sample coordinates for every pixel's ray through a volume.

        Parameters
        ----------
        shape:
            Volume shape ``(nz, ny, nx)``.
        step:
            Sampling distance along the ray in voxel units.

        Returns
        -------
        ``(origins, directions, n_samples)`` where ``origins`` and
        ``directions`` have shape ``(height·width, 3)`` (first sample
        position and unit (z, y, x) step vector per ray), and marching
        ``n_samples`` steps of ``step`` from the origins covers the
        volume's bounding sphere.  Orthographic rays share one direction
        (replicated); perspective rays diverge from the eye point.
        """
        shape = tuple(float(s) for s in shape)
        center = np.array([(s - 1) / 2.0 for s in shape])
        radius = 0.5 * float(np.linalg.norm(shape))
        extent = radius / self.zoom
        forward, right, up = self.basis()
        # Pixel grid on the view plane through the center, y down in image.
        px = (np.arange(self.width) + 0.5) / self.width * 2.0 - 1.0
        py = (np.arange(self.height) + 0.5) / self.height * 2.0 - 1.0
        PX, PY = np.meshgrid(px, py)
        plane = (
            center[None, :]
            + extent * PX.reshape(-1, 1) * right[None, :]
            - extent * PY.reshape(-1, 1) * up[None, :]
        )
        if self.projection == "orthographic":
            directions = np.broadcast_to(forward, plane.shape).copy()
            origins = plane - radius * directions
            n_samples = max(2, int(np.ceil(2.0 * radius / step)))
        else:
            eye = center - self.eye_distance * radius * forward
            directions = plane - eye[None, :]
            directions /= np.linalg.norm(directions, axis=1, keepdims=True)
            # Start each ray one bounding radius before the center plane so
            # marching covers the sphere with a little slack for obliquity.
            origins = plane - radius * directions
            n_samples = max(2, int(np.ceil(2.2 * radius / step)))
        return origins.astype(np.float32), directions.astype(np.float32), n_samples
