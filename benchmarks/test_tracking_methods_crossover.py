"""Tracking-method crossover — 4D region growing vs prediction–verification.

Sec. 5 states the paper's tracking assumption explicitly: *"there is
sufficient temporal samplings for the matching features to overlap in 3D
space for consecutive time steps"*, and Sec. 2 cites Reinders et al.'s
prediction–verification scheme as the attribute-based alternative.  This
benchmark maps out where each method works by coarsening the temporal
sampling of the vortex sequence until consecutive occurrences no longer
overlap:

- dense sampling → both methods track (region growing additionally handles
  the split natively);
- coarse sampling → overlap breaks, 4D region growing loses the feature,
  prediction–verification keeps it.
"""

import numpy as np

from repro.data import make_vortex_sequence
from repro.segmentation.prediction import PredictionVerificationTracker
from repro.segmentation.regiongrow import grow_4d

SHAPE = (36, 36, 36)
SAMPLINGS = {"dense (Δt=4)": range(50, 75, 4), "medium (Δt=8)": [50, 58, 66, 74],
             "coarse (Δt=12)": [50, 62, 74]}


def run_case(times):
    seq = make_vortex_sequence(shape=SHAPE, times=times, seed=31)
    criteria = np.stack([v.data > 0.5 for v in seq])
    coords = np.argwhere(seq[0].mask("vortex"))
    seed = tuple(int(c) for c in coords[len(coords) // 2])

    min_overlap = min(
        int((seq[i].mask("vortex") & seq[i + 1].mask("vortex")).sum())
        for i in range(len(seq) - 1)
    )
    grown = grow_4d(criteria, [(0, *seed)])
    rg_steps = int(sum(1 for s in range(len(seq)) if grown[s].any()))
    pv = PredictionVerificationTracker(max_distance=16.0).track(seq, criteria, seed)
    return dict(
        steps=len(seq), min_overlap=min_overlap,
        region_growing=rg_steps, prediction_verification=pv.steps_tracked,
    )


def test_tracking_methods_crossover(benchmark):
    results = {name: run_case(times) for name, times in SAMPLINGS.items()}

    # the timed kernel: both trackers on the dense case
    def both():
        seq = make_vortex_sequence(shape=SHAPE, times=SAMPLINGS["dense (Δt=4)"], seed=31)
        criteria = np.stack([v.data > 0.5 for v in seq])
        coords = np.argwhere(seq[0].mask("vortex"))
        seed = tuple(int(c) for c in coords[len(coords) // 2])
        grow_4d(criteria, [(0, *seed)])
        PredictionVerificationTracker(max_distance=16.0).track(seq, criteria, seed)

    benchmark.pedantic(both, rounds=3, iterations=1)

    print("\nTracking-method crossover (steps tracked / total):")
    print(f"{'sampling':<16} {'min overlap':>12} {'region-grow':>12} {'pred-verify':>12}")
    for name, r in results.items():
        print(f"{name:<16} {r['min_overlap']:>12} "
              f"{r['region_growing']}/{r['steps']:>9} "
              f"{r['prediction_verification']}/{r['steps']:>9}")
        benchmark.extra_info[name] = r

    dense = results["dense (Δt=4)"]
    coarse = results["coarse (Δt=12)"]
    # dense: the overlap assumption holds and both methods track fully
    assert dense["min_overlap"] > 0
    assert dense["region_growing"] == dense["steps"]
    assert dense["prediction_verification"] == dense["steps"]
    # coarse: overlap broken -> region growing fails, prediction survives
    assert coarse["min_overlap"] == 0
    assert coarse["region_growing"] < coarse["steps"]
    assert coarse["prediction_verification"] == coarse["steps"]
