"""Tests for repro.volume.grid: Volume and VolumeSequence containers."""

import numpy as np
import pytest

from repro.volume import Volume, VolumeSequence


def make_vol(value=0.0, shape=(4, 5, 6), time=0, **masks):
    data = np.full(shape, value, dtype=np.float32)
    return Volume(data, time=time, masks=masks)


class TestVolume:
    def test_converts_to_float32_contiguous(self):
        v = Volume(np.arange(24, dtype=np.int64).reshape(2, 3, 4))
        assert v.data.dtype == np.float32
        assert v.data.flags["C_CONTIGUOUS"]

    def test_shape_and_size(self):
        v = make_vol(shape=(3, 4, 5))
        assert v.shape == (3, 4, 5)
        assert v.size == 60

    def test_value_range(self):
        data = np.zeros((2, 2, 2), dtype=np.float32)
        data[0, 0, 0] = -1.5
        data[1, 1, 1] = 2.5
        v = Volume(data)
        assert v.value_range == (-1.5, 2.5)

    def test_mask_shape_validated(self):
        with pytest.raises(ValueError, match="mask"):
            Volume(np.zeros((2, 2, 2)), masks={"m": np.zeros((3, 3, 3), dtype=bool)})

    def test_mask_lookup_and_missing(self):
        m = np.zeros((2, 2, 2), dtype=bool)
        m[0, 0, 0] = True
        v = Volume(np.zeros((2, 2, 2)), masks={"ring": m})
        assert v.mask("ring").sum() == 1
        with pytest.raises(KeyError, match="ring"):
            v.mask("other")

    def test_mask_cast_to_bool(self):
        v = Volume(np.zeros((2, 2, 2)), masks={"m": np.ones((2, 2, 2), dtype=np.uint8)})
        assert v.mask("m").dtype == bool

    def test_normalized_default_range(self):
        data = np.linspace(2.0, 4.0, 8).reshape(2, 2, 2)
        nv = Volume(data).normalized()
        assert nv.value_range == (0.0, 1.0)

    def test_normalized_shared_range_clips(self):
        data = np.linspace(0.0, 10.0, 8).reshape(2, 2, 2)
        nv = Volume(data).normalized(lo=5.0, hi=20.0)
        assert nv.data.min() == 0.0
        assert nv.data.max() < 1.0

    def test_normalized_constant_volume(self):
        nv = make_vol(3.0).normalized()
        assert np.all(nv.data == 0.0)

    def test_slice_plane_is_view(self):
        v = make_vol(0.0)
        plane = v.slice_plane(0, 1)
        plane[...] = 7.0
        assert np.all(v.data[1] == 7.0)

    def test_slice_plane_shapes(self):
        v = make_vol(shape=(4, 5, 6))
        assert v.slice_plane(0, 0).shape == (5, 6)
        assert v.slice_plane(1, 0).shape == (4, 6)
        assert v.slice_plane(2, 0).shape == (4, 5)

    def test_slice_plane_bounds(self):
        v = make_vol(shape=(4, 5, 6))
        with pytest.raises(IndexError):
            v.slice_plane(0, 4)
        with pytest.raises(ValueError):
            v.slice_plane(3, 0)

    def test_copy_is_deep(self):
        v = make_vol(1.0, m=np.ones((4, 5, 6), dtype=bool))
        c = v.copy()
        c.data[...] = 9.0
        c.mask("m")[...] = False
        assert np.all(v.data == 1.0)
        assert v.mask("m").all()


class TestVolumeSequence:
    def test_requires_volumes(self):
        with pytest.raises(ValueError):
            VolumeSequence([])

    def test_rejects_mixed_shapes(self):
        with pytest.raises(ValueError, match="share a grid"):
            VolumeSequence([make_vol(shape=(2, 2, 2), time=0), make_vol(shape=(3, 3, 3), time=1)])

    def test_rejects_duplicate_times(self):
        with pytest.raises(ValueError, match="duplicate"):
            VolumeSequence([make_vol(time=5), make_vol(time=5)])

    def test_rejects_unsorted_times(self):
        with pytest.raises(ValueError, match="increasing"):
            VolumeSequence([make_vol(time=5), make_vol(time=3)])

    def test_rejects_non_volume(self):
        with pytest.raises(TypeError):
            VolumeSequence([np.zeros((2, 2, 2))])

    def test_indexing_and_iteration(self):
        seq = VolumeSequence([make_vol(time=1), make_vol(time=2)])
        assert len(seq) == 2
        assert seq[0].time == 1
        assert [v.time for v in seq] == [1, 2]

    def test_at_time_vs_positional(self):
        seq = VolumeSequence([make_vol(time=195), make_vol(time=225)])
        assert seq.at_time(225) is seq[1]
        assert seq.index_of_time(195) == 0
        with pytest.raises(KeyError):
            seq.at_time(200)
        with pytest.raises(KeyError):
            seq.index_of_time(200)

    def test_global_value_range(self):
        a = Volume(np.full((2, 2, 2), -1.0), time=0)
        b = Volume(np.full((2, 2, 2), 3.0), time=1)
        assert VolumeSequence([a, b]).value_range == (-1.0, 3.0)

    def test_subsequence(self):
        seq = VolumeSequence([make_vol(time=t) for t in (1, 2, 3)])
        sub = seq.subsequence([1, 3])
        assert sub.times == [1, 3]

    def test_as_array_stacks(self):
        seq = VolumeSequence([make_vol(1.0, time=0), make_vol(2.0, time=1)])
        arr = seq.as_array()
        assert arr.shape == (2, 4, 5, 6)
        assert np.all(arr[1] == 2.0)
