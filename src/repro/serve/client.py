"""Stdlib client for the serve daemon: retries, timeouts, 429 handling.

``http.client`` only — the same zero-dependency rule as the server.  One
fresh connection per request (the server closes after every response),
so a client object is cheap, stateless, and safe to share across
threads.

Failure taxonomy mirrors what callers need to branch on:

- :class:`ServeUnavailable` — could not connect (daemon not up yet, or
  gone); retried ``retries`` times with exponential backoff first, which
  is how CI waits out daemon startup.
- :class:`ServeTimeout` — no response within ``timeout`` seconds.
- :class:`ServeBusy` — 429 backpressure; carries the server's
  ``Retry-After`` hint.  With ``retry_busy > 0`` the client honors the
  hint that many times before giving up.
- :class:`ServeHTTPError` — any other non-2xx, with status and the
  server's error message.
"""

from __future__ import annotations

import http.client
import json
import socket
import time


class ServeClientError(Exception):
    """Base class for client-side failures."""


class ServeUnavailable(ServeClientError):
    """Connection refused/reset — the daemon is not (yet) reachable."""


class ServeTimeout(ServeClientError):
    """The daemon did not answer within the client timeout."""


class ServeBusy(ServeClientError):
    """429: the compute queue is full; retry after ``retry_after`` seconds."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ServeHTTPError(ServeClientError):
    """Any other non-2xx response, with its status code and message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    """Talk to one daemon at ``host:port``.

    ``retries`` covers *connection* failures only (exponential backoff
    from ``backoff`` seconds); ``retry_busy`` covers 429 responses
    (sleeping the server's ``Retry-After``).  Both default to zero so
    failures surface immediately unless the caller opts in to waiting.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout: float = 30.0, retries: int = 0,
                 backoff: float = 0.1, retry_busy: int = 0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.retry_busy = int(retry_busy)

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def request(self, method: str, path: str, payload: dict | None = None
                ) -> tuple[int, dict, bytes]:
        """One HTTP exchange; returns ``(status, headers, body)``.

        Applies the connection-retry and 429-retry policies; raises the
        taxonomy above for anything it cannot turn into a response.
        """
        body = json.dumps(payload).encode() if payload is not None else None
        busy_left = self.retry_busy
        attempt = 0
        while True:
            try:
                status, headers, data = self._exchange(method, path, body)
            except (ConnectionRefusedError, ConnectionResetError,
                    http.client.RemoteDisconnected, OSError) as exc:
                if isinstance(exc, socket.timeout):
                    raise ServeTimeout(
                        f"no response from {self.host}:{self.port} "
                        f"within {self.timeout:g}s") from None
                if attempt >= self.retries:
                    raise ServeUnavailable(
                        f"cannot reach {self.host}:{self.port} "
                        f"after {attempt + 1} attempt(s): {exc}") from None
                time.sleep(self.backoff * (2 ** attempt))
                attempt += 1
                continue
            if status == 429:
                retry_after = float(headers.get("retry-after", "1") or "1")
                if busy_left <= 0:
                    raise ServeBusy(self._error_message(data), retry_after)
                busy_left -= 1
                time.sleep(retry_after)
                continue
            return status, headers, data

    def _exchange(self, method: str, path: str, body: bytes | None
                  ) -> tuple[int, dict, bytes]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
            return (response.status,
                    {k.lower(): v for k, v in response.getheaders()}, data)
        finally:
            conn.close()

    @staticmethod
    def _error_message(data: bytes) -> str:
        try:
            return json.loads(data)["error"]
        except (json.JSONDecodeError, KeyError, TypeError):
            return data.decode(errors="replace").strip() or "(no body)"

    def _json(self, method: str, path: str, payload: dict | None = None) -> dict:
        status, _headers, data = self.request(method, path, payload)
        if status >= 400:
            raise ServeHTTPError(status, self._error_message(data))
        return json.loads(data)

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def healthz(self) -> dict:
        return self._json("GET", "/healthz")

    def metrics(self) -> str:
        status, _headers, data = self.request("GET", "/metrics")
        if status >= 400:
            raise ServeHTTPError(status, self._error_message(data))
        return data.decode()

    def classify(self, **params) -> dict:
        return self._json("POST", "/v1/classify", params)

    def track(self, **params) -> dict:
        return self._json("POST", "/v1/track", params)

    def render(self, **params) -> dict:
        return self._json("POST", "/v1/render", params)

    def run(self, config: dict, **params) -> dict:
        return self._json("POST", "/v1/run", {"config": config, **params})

    def follow_status(self) -> dict:
        """Progress snapshots of follow-mode runs under the serve root."""
        return self._json("GET", "/v1/follow/status")

    def frame(self, digest_or_path: str) -> bytes:
        """Fetch one rendered frame's PNG bytes by digest or ``path``."""
        path = (digest_or_path if digest_or_path.startswith("/")
                else f"/v1/frames/{digest_or_path}")
        status, _headers, data = self.request("GET", path)
        if status >= 400:
            raise ServeHTTPError(status, self._error_message(data))
        return data
