"""Track a vortex through time, detect its split, render highlights (Fig. 9).

The turbulent-vortex sequence contains one vortex tube that translates,
deforms, and splits into two between steps 50 and 74.  Tracking is 4D
region growing (Sec. 5): seed the feature at the first step, let growth
cross time through the spatial overlap of consecutive occurrences, and
read events off the per-step connected components.

Each frame is rendered with the paper's Sec. 7 highlight rule — tracked
voxels forced red, context from the user's 1D TF.

Run:  python examples/vortex_split_tracking.py
"""

from pathlib import Path

import numpy as np

from repro import (
    Camera,
    FeatureTracker,
    TransferFunction1D,
    grayscale_colormap,
    make_vortex_sequence,
    render_tracked,
)
from repro.utils.timing import Timer

OUT = Path(__file__).parent / "output" / "vortex"


def main():
    print("Generating the vortex sequence (splits near the end)...")
    sequence = make_vortex_sequence(shape=(40, 40, 40), times=range(50, 75, 4))

    # Seed on the vortex at the first step (a user would click on it).
    first = sequence[0]
    coords = np.argwhere(first.mask("vortex"))
    seed = (0, *map(int, coords[len(coords) // 2]))
    print(f"Seeding 4D region growing at (step_idx, z, y, x) = {seed}")

    tracker = FeatureTracker()
    result = tracker.track_fixed(sequence, seed, lo=0.5, hi=10.0)

    print(f"\n{'step':>6} {'voxels':>8} {'components':>11}")
    for t, n, c in zip(result.times, result.voxel_counts, result.component_counts()):
        print(f"{t:>6} {n:>8} {c:>11}")

    interesting = [e for e in result.events if e.kind != "continuation"]
    print("\nEvents:", [(e.kind, f"{e.time_a}->{e.time_b}") for e in interesting]
          or "none (all continuations)")

    # Context TF: faint grayscale so the red highlight pops (Fig. 9 style).
    context = TransferFunction1D(
        sequence.value_range, colormap=grayscale_colormap()
    ).add_box(0.25, sequence.value_range[1], 0.08)

    camera = Camera(azimuth=40, elevation=25, width=160, height=160)
    print("\nRendering highlighted frames (tracked feature in red)...")
    total = 0.0
    for i, vol in enumerate(sequence):
        with Timer() as timer:
            image = render_tracked(vol, result.masks[i], context, camera=camera)
        total += timer.elapsed
        image.save_ppm(OUT / f"tracked_t{vol.time}.ppm")
    fps = len(sequence) / total
    print(f"Rendered {len(sequence)} frames at {fps:.1f} fps "
          f"(the paper's GPU did ~2 fps at 512x512) -> {OUT}/")


if __name__ == "__main__":
    main()
