"""Volume containers.

A :class:`Volume` wraps one 3D scalar field (a single simulation time step);
a :class:`VolumeSequence` wraps an ordered set of them sharing a grid — the
"4D" data the paper's title refers to.  Both are thin, explicit containers:
the raw array is always reachable as ``.data`` so hot paths stay plain
numpy, and metadata (time-step id, value range, optional ground-truth masks)
travels alongside without copying voxels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import check_volume_array


@dataclass
class Volume:
    """One 3D scalar field at a single time step.

    Parameters
    ----------
    data:
        3D numeric array, converted to C-contiguous float32 and indexed
        ``[z, y, x]``.
    time:
        The simulation's own time-step id (the paper uses ids like 195…255
        for the argon bubble), not a 0-based sequence index.
    name:
        Optional dataset label used in reports.
    masks:
        Optional named boolean ground-truth masks (same shape as ``data``).
        The synthetic generators fill these so experiments can be scored
        quantitatively; real data would leave the dict empty.
    """

    data: np.ndarray
    time: int = 0
    name: str = ""
    masks: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.data = check_volume_array("data", self.data)
        for key, mask in self.masks.items():
            mask = np.asarray(mask)
            if mask.shape != self.data.shape:
                raise ValueError(
                    f"mask {key!r} shape {mask.shape} != volume shape {self.data.shape}"
                )
            self.masks[key] = mask.astype(bool, copy=False)

    @property
    def shape(self) -> tuple[int, int, int]:
        """Grid shape ``(nz, ny, nx)``."""
        return self.data.shape  # type: ignore[return-value]

    @property
    def size(self) -> int:
        """Total voxel count."""
        return int(self.data.size)

    @property
    def value_range(self) -> tuple[float, float]:
        """``(min, max)`` of the scalar field."""
        return float(self.data.min()), float(self.data.max())

    def mask(self, name: str) -> np.ndarray:
        """Return the ground-truth mask called ``name``.

        Raises ``KeyError`` listing available masks when absent, which makes
        mis-wired experiments fail loudly.
        """
        try:
            return self.masks[name]
        except KeyError:
            raise KeyError(
                f"volume has no mask {name!r}; available: {sorted(self.masks)}"
            ) from None

    def normalized(self, lo: float | None = None, hi: float | None = None) -> "Volume":
        """Return a copy rescaled so values map linearly onto [0, 1].

        ``lo``/``hi`` default to the volume's own range; passing a shared
        sequence range keeps time steps comparable (needed when a single
        colormap spans the whole sequence, paper Sec. 7).
        """
        vmin, vmax = self.value_range
        lo = vmin if lo is None else float(lo)
        hi = vmax if hi is None else float(hi)
        if hi <= lo:
            data = np.zeros_like(self.data)
        else:
            data = (self.data - lo) / (hi - lo)
            np.clip(data, 0.0, 1.0, out=data)
        return Volume(data, time=self.time, name=self.name, masks=dict(self.masks))

    def slice_plane(self, axis: int, index: int) -> np.ndarray:
        """Return the 2D axis-aligned slice ``index`` along ``axis`` (0=z,1=y,2=x).

        This is the view the painting interface draws on (paper Sec. 6).
        Returned as a view — mutating it mutates the volume.
        """
        if axis not in (0, 1, 2):
            raise ValueError(f"axis must be 0, 1 or 2, got {axis}")
        if not 0 <= index < self.shape[axis]:
            raise IndexError(f"slice index {index} out of range for axis {axis}")
        slicer: list = [slice(None)] * 3
        slicer[axis] = index
        return self.data[tuple(slicer)]

    def copy(self) -> "Volume":
        """Deep copy (voxels and masks)."""
        return Volume(
            self.data.copy(),
            time=self.time,
            name=self.name,
            masks={k: v.copy() for k, v in self.masks.items()},
        )


class VolumeSequence:
    """An ordered time series of :class:`Volume` objects on one grid.

    Supports ``len``, iteration, integer indexing by *position*, and lookup
    by simulation time-step id via :meth:`at_time` — the distinction matters
    because the paper addresses steps by simulation id (e.g. "time step
    310") while arrays are positionally indexed.
    """

    def __init__(self, volumes, name: str = "") -> None:
        volumes = list(volumes)
        if not volumes:
            raise ValueError("VolumeSequence requires at least one volume")
        shape = volumes[0].shape
        for vol in volumes:
            if not isinstance(vol, Volume):
                raise TypeError(f"expected Volume, got {type(vol).__name__}")
            if vol.shape != shape:
                raise ValueError(
                    f"all volumes must share a grid: {vol.shape} != {shape}"
                )
        times = [v.time for v in volumes]
        if len(set(times)) != len(times):
            raise ValueError(f"duplicate time-step ids in sequence: {times}")
        if times != sorted(times):
            raise ValueError(f"time-step ids must be increasing, got {times}")
        self._volumes = volumes
        self.name = name or (volumes[0].name if volumes[0].name else "")

    def __len__(self) -> int:
        return len(self._volumes)

    def __iter__(self):
        return iter(self._volumes)

    def __getitem__(self, index: int) -> Volume:
        return self._volumes[index]

    @property
    def shape(self) -> tuple[int, int, int]:
        """Shared grid shape ``(nz, ny, nx)``."""
        return self._volumes[0].shape

    @property
    def times(self) -> list[int]:
        """Simulation time-step ids, in order."""
        return [v.time for v in self._volumes]

    def at_time(self, time: int) -> Volume:
        """Return the volume whose simulation time-step id equals ``time``."""
        for vol in self._volumes:
            if vol.time == time:
                return vol
        raise KeyError(f"no volume with time-step id {time}; have {self.times}")

    def index_of_time(self, time: int) -> int:
        """Positional index of simulation time-step id ``time``."""
        for i, vol in enumerate(self._volumes):
            if vol.time == time:
                return i
        raise KeyError(f"no volume with time-step id {time}; have {self.times}")

    @property
    def value_range(self) -> tuple[float, float]:
        """Global ``(min, max)`` over the full sequence.

        The IATF maps every time step through one shared scalar domain
        (paper Sec. 4.2.2: the transfer-function index is a scalar value);
        this range defines that domain.
        """
        lows, highs = zip(*(v.value_range for v in self._volumes))
        return min(lows), max(highs)

    def subsequence(self, times) -> "VolumeSequence":
        """A new sequence containing only the listed simulation step ids."""
        return VolumeSequence([self.at_time(t) for t in times], name=self.name)

    def as_array(self) -> np.ndarray:
        """Stack into a 4D ``[t, z, y, x]`` array (copies)."""
        return np.stack([v.data for v in self._volumes], axis=0)
