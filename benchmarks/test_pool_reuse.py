"""Persistent pool reuse + pipelined dataflow — the overhead the resident
pool exists to delete, measured.

Two machine-relative ratios, both gated by a committed baseline:

- ``speedup_pool_reuse``: a pipeline that issues many short maps (one
  per stage per chunk) pays a full process-pool spawn per map on the
  per-map backend; the resident :class:`WorkerPool` pays it once.  The
  ratio is spawn overhead amortisation, so it holds on any host —
  including single-core runners.
- ``speedup_pipelined``: an end-to-end ``classify -> tfs -> render`` run
  under the stage-barrier scheduler vs ``--pipelined`` dataflow at the
  same worker count.  Barriers leave fan-out remainders idle at every
  stage edge (5 steps on 2 workers = a half-idle wave per stage);
  dataflow fills those bubbles with the next stage's work.  Both
  schedules must produce byte-identical run directories.
"""

import json
import os
import tempfile
from pathlib import Path

from repro.data import make_argon_sequence
from repro.parallel import WorkerPool, map_timesteps
from repro.run.runner import PipelineRunner, RunConfig
from repro.utils.timing import Timer
from repro.volume.io import save_sequence

MAPS = 8
ITEMS_PER_MAP = 8


def _write_bench(name: str, payload: dict) -> Path:
    """Drop a ``BENCH_<name>.json`` next to the pytest cwd (CI artifact)."""
    out = Path(os.environ.get("REPRO_BENCH_DIR", ".")) / f"BENCH_{name}.json"
    out.write_text(json.dumps(payload, indent=2))
    return out


def busy(n):
    return sum(i * i for i in range(n))


def _repeated_maps(pool=None):
    items = [2000] * ITEMS_PER_MAP
    for _ in range(MAPS):
        map_timesteps(busy, items, workers=2, backend="process", pool=pool)


def _run_config(root: Path) -> RunConfig:
    sequence = make_argon_sequence(shape=(20, 24, 24),
                                   times=[195, 205, 215, 225, 235])
    save_sequence(sequence, root / "argon")
    return RunConfig.from_dict({
        "sequence": str(root / "argon"),
        "stages": ["classify", "tfs", "render"],
        "classify": {"mask": "ring", "train_steps": [195], "samples": 25,
                     "epochs": 10, "hidden": 8, "mode": "fast"},
        "render": {"size": 32},
    })


def _timed_run(config, run_dir, pipelined: bool) -> float:
    with Timer() as t:
        runner = PipelineRunner.create(config, run_dir, workers=2,
                                       pipelined=pipelined)
        runner.run()
    return t.elapsed


def _store_bytes(run_dir: Path) -> dict:
    return {p.name: p.read_bytes() for p in sorted((run_dir / "store").iterdir())}


def test_pool_reuse_and_pipelined_dataflow(benchmark):
    cores = os.cpu_count() or 1

    # -- resident pool vs per-map spawn over repeated short maps -------- #
    with Timer() as t_fresh:
        _repeated_maps(pool=None)
    with WorkerPool(workers=2) as pool:
        with Timer() as t_pool:
            _repeated_maps(pool=pool)
        spawned = pool.spawned
    assert spawned == 2, "resident pool must not respawn between maps"
    speedup_reuse = t_fresh.elapsed / t_pool.elapsed

    benchmark.pedantic(lambda: _repeated_maps(pool=None), rounds=1, iterations=1)

    # -- barrier vs pipelined end-to-end run, byte-identical outputs ---- #
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        config = _run_config(root)
        barrier_times, pipelined_times = [], []
        for round_no in range(3):  # fresh run dirs: the store memoizes
            barrier_times.append(
                _timed_run(config, root / f"barrier{round_no}", False))
            pipelined_times.append(
                _timed_run(config, root / f"pipelined{round_no}", True))
        barrier_t, pipelined_t = min(barrier_times), min(pipelined_times)
        for rel in ("manifest.json", "config.json"):
            assert ((root / "barrier0" / rel).read_bytes()
                    == (root / "pipelined0" / rel).read_bytes())
        assert _store_bytes(root / "barrier0") == _store_bytes(root / "pipelined0")
    speedup_pipelined = barrier_t / pipelined_t

    print(f"\nresident pool: {MAPS} maps x {ITEMS_PER_MAP} short tasks: "
          f"fresh {t_fresh.elapsed:.3f}s, pooled {t_pool.elapsed:.3f}s, "
          f"{speedup_reuse:.2f}x")
    print(f"end-to-end run (5 steps, 2 workers): barrier {barrier_t:.3f}s, "
          f"pipelined {pipelined_t:.3f}s, {speedup_pipelined:.2f}x")
    benchmark.extra_info["speedup_pool_reuse"] = round(speedup_reuse, 3)
    benchmark.extra_info["speedup_pipelined"] = round(speedup_pipelined, 3)
    _write_bench("pool_reuse", {
        "maps": MAPS,
        "items_per_map": ITEMS_PER_MAP,
        "fresh_s": round(t_fresh.elapsed, 4),
        "pooled_s": round(t_pool.elapsed, 4),
        "barrier_s": round(barrier_t, 4),
        "pipelined_s": round(pipelined_t, 4),
        "speedup_pool_reuse": round(speedup_reuse, 3),
        "speedup_pipelined": round(speedup_pipelined, 3),
    })

    # Spawn amortisation holds on any host; the dataflow win needs real
    # parallel slack, so its floor steps down on cramped runners.
    assert speedup_reuse >= 2.0
    if cores >= 4:
        assert speedup_pipelined >= 1.1, (
            f"pipelined run should cut barrier wall-clock to <=0.9x, got "
            f"{1 / speedup_pipelined:.2f}x")
    elif cores >= 2:
        assert speedup_pipelined >= 0.95
