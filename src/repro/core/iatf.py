"""Intelligent Adaptive Transfer Function (IATF) — paper Sec. 4.2.

Workflow (Fig. 1): the user assigns ordinary 1D transfer functions to a few
*key frames*; each key-frame TF entry becomes one training vector
``⟨data, cumulative-histogram(data), time⟩ → opacity`` (Sec. 4.2.2 — the
training set comes from the TFs themselves, not from sampling voxels, so
every TF entry is equally represented and no volume needs to stay in core).
A learned model maps those inputs to opacity; at render time it regenerates
a fresh 1D TF for *any* time step by evaluating every table entry's
⟨value, cumhist, t⟩ triple — sub-second work, cheap enough to redo per
frame (Sec. 7).

Why two pathways
----------------
The paper asks the adaptive TF to do two things at once (Sec. 4.2.1): to
*"adapt to shifts in feature value over time by taking into account the
cumulative histogram value"* and to *"remain invariant with respect to
cumulative histogram value by relying on scalar value"* (for features that
keep their value but change size).  A single three-input perceptron can
satisfy both on the key frames yet hang its mapping entirely on whichever
input the initialization favors — the key-frame training data is exactly
consistent with a value-gated and a cumhist-gated hypothesis, and only
whichever signal actually stays stable generalizes to unseen steps (see
``docs/reproduction_notes.md`` §3).  This implementation therefore trains
one small committee of perceptrons per *pathway* — ⟨value, time⟩ and
⟨cumulative histogram, time⟩ — each a well-posed 2D fit with no ambiguity,
and combines them with a per-entry **max**: a TF entry is visible when
*either* signal says the user would have kept it visible.  Under global
value drift the cumhist pathway carries the feature (Figs. 3–5); for
constant-value/size-changing features the value pathway does; the max is
never worse than either specialist, and reduces to the paper's exact
failure-mode baselines only when both signals break.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mlp import NeuralNetwork
from repro.transfer.tf1d import TransferFunction1D
from repro.volume.grid import Volume, VolumeSequence
from repro.volume.histogram import CumulativeHistogram


@dataclass
class KeyFrame:
    """One user-specified key frame: a time step, its TF, its cumhist."""

    time: int
    tf: TransferFunction1D
    cumhist: CumulativeHistogram


class AdaptiveTransferFunction:
    """Learnable, time-adaptive transfer function.

    Parameters
    ----------
    domain:
        Sequence-global scalar ``(lo, hi)``; all key-frame TFs and all
        generated TFs share it so entry indices mean the same value at
        every step.
    time_range:
        ``(t_first, t_last)`` of the sequence being visualized, used to
        normalize the time input.
    entries:
        TF table resolution.
    bins:
        Cumulative-histogram resolution.
    hidden, learning_rate, momentum, seed:
        Hyper-parameters of the underlying perceptrons.
    committee:
        Perceptrons per pathway; their predictions are averaged (seeds
        ``seed, seed+1, …``).  The pathway design removes the
        generalization ambiguity, so the committee only smooths
        initialization wiggle — small values suffice.
    use_cumhist, use_time:
        Ablation switches (DESIGN.md §4): dropping the cumulative-histogram
        pathway degrades the IATF toward interpolation-like behaviour
        under value drift.
    """

    def __init__(self, domain, time_range, entries: int = 256, bins: int = 256,
                 hidden: int = 8, learning_rate: float = 0.5, momentum: float = 0.9,
                 seed=0, committee: int = 3, use_cumhist: bool = True,
                 use_time: bool = True) -> None:
        self.lo = float(domain[0])
        self.hi = float(domain[1])
        if not self.hi > self.lo:
            raise ValueError(f"domain must satisfy hi > lo, got {domain}")
        if committee < 1:
            raise ValueError(f"committee must be >= 1, got {committee}")
        self.t0 = float(time_range[0])
        self.t1 = float(time_range[1])
        self.entries = int(entries)
        self.bins = int(bins)
        self.committee = int(committee)
        self.use_cumhist = bool(use_cumhist)
        self.use_time = bool(use_time)

        # Feature-column layout of training_arrays()/_features():
        # [value, cumhist?, time?] — pathway column selectors follow it.
        self._value_cols = [0] + ([1 + int(self.use_cumhist)] if self.use_time else [])
        self._cumhist_cols = (
            [1] + ([2] if self.use_time else []) if self.use_cumhist else []
        )

        base_seed = int(seed) if not hasattr(seed, "integers") else int(seed.integers(0, 2**31))

        def build(n_inputs, offset):
            return [
                NeuralNetwork(n_inputs, n_hidden=hidden, learning_rate=learning_rate,
                              momentum=momentum, seed=base_seed + offset + m)
                for m in range(self.committee)
            ]

        self.value_nets = build(len(self._value_cols), 0)
        self.cumhist_nets = (
            build(len(self._cumhist_cols), 1000) if self.use_cumhist else []
        )
        self.key_frames: list[KeyFrame] = []

    @property
    def nets(self) -> list[NeuralNetwork]:
        """All committee members across both pathways (introspection)."""
        return self.value_nets + self.cumhist_nets

    @property
    def net(self) -> NeuralNetwork:
        """The first committee member (kept for introspection/tests)."""
        return self.nets[0]

    # ------------------------------------------------------------------ #
    # Key frames and training
    # ------------------------------------------------------------------ #
    def _norm_time(self, time: float) -> float:
        if self.t1 == self.t0:
            return 0.0
        return (float(time) - self.t0) / (self.t1 - self.t0)

    def _norm_values(self, values: np.ndarray) -> np.ndarray:
        return (np.asarray(values, dtype=np.float64) - self.lo) / (self.hi - self.lo)

    def _features(self, values: np.ndarray, cumhist: CumulativeHistogram, time: float) -> np.ndarray:
        cols = [self._norm_values(values)]
        if self.use_cumhist:
            cols.append(cumhist.at_values(values))
        if self.use_time:
            cols.append(np.full(len(values), self._norm_time(time)))
        return np.stack(cols, axis=1)

    def add_key_frame(self, volume: Volume, tf: TransferFunction1D) -> KeyFrame:
        """Register a user-specified key-frame TF for ``volume``'s step.

        The volume supplies the cumulative histogram (computed over the
        shared domain); only the histogram is retained, so key-frame
        volumes can be streamed and dropped (the out-of-core pattern).
        """
        if (tf.lo, tf.hi, tf.entries) != (self.lo, self.hi, self.entries):
            raise ValueError(
                "key-frame TF must share the IATF's domain and resolution: "
                f"TF has ({tf.lo}, {tf.hi}, {tf.entries}), IATF has "
                f"({self.lo}, {self.hi}, {self.entries})"
            )
        ch = CumulativeHistogram.of(volume, bins=self.bins, domain=(self.lo, self.hi))
        kf = KeyFrame(time=volume.time, tf=tf.copy(), cumhist=ch)
        self.key_frames.append(kf)
        return kf

    def training_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Assemble the Sec. 4.2.2 training set from all key frames.

        One sample per TF entry per key frame: inputs
        ⟨value, cumhist(value), t⟩ (normalized), target the user's opacity.
        """
        if not self.key_frames:
            raise ValueError("no key frames added yet")
        xs, ys = [], []
        for kf in self.key_frames:
            values = kf.tf.entry_values()
            xs.append(self._features(values, kf.cumhist, kf.time))
            ys.append(kf.tf.opacity.copy())
        return np.concatenate(xs, axis=0), np.concatenate(ys, axis=0)

    def train_on_arrays(self, X: np.ndarray, y: np.ndarray, epochs: int = 300,
                        batch_size: int = 64, tol: float = 1e-5) -> list[float]:
        """Train both pathways from a full feature matrix.

        ``X`` uses the :meth:`training_arrays` column layout; each pathway
        receives its own column subset.  Returns the mean member loss per
        epoch index (histories may differ in length under early stopping).
        """
        histories = [
            net.train(X[:, self._value_cols], y, epochs=epochs,
                      batch_size=batch_size, tol=tol)
            for net in self.value_nets
        ] + [
            net.train(X[:, self._cumhist_cols], y, epochs=epochs,
                      batch_size=batch_size, tol=tol)
            for net in self.cumhist_nets
        ]
        longest = max(len(h) for h in histories)
        merged = []
        for i in range(longest):
            vals = [h[i] for h in histories if i < len(h)]
            merged.append(float(np.mean(vals)))
        return merged

    def train(self, epochs: int = 300, batch_size: int = 64, tol: float = 1e-5) -> list[float]:
        """Train (or continue training) on all key frames."""
        X, y = self.training_arrays()
        return self.train_on_arrays(X, y, epochs=epochs, batch_size=batch_size, tol=tol)

    def train_increment(self, epochs: int = 10, batch_size: int = 64) -> float:
        """Idle-loop training slice; returns mean member loss (Sec. 4.2.2)."""
        X, y = self.training_arrays()
        losses = [
            net.train_increment(X[:, self._value_cols], y, epochs=epochs,
                                batch_size=batch_size)
            for net in self.value_nets
        ] + [
            net.train_increment(X[:, self._cumhist_cols], y, epochs=epochs,
                                batch_size=batch_size)
            for net in self.cumhist_nets
        ]
        return float(np.mean(losses))

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #
    def _predict_opacity(self, F: np.ndarray) -> np.ndarray:
        """Pathway predictions combined with max (see module docstring)."""
        value_pred = np.mean(
            [net.predict(F[:, self._value_cols]) for net in self.value_nets], axis=0
        )
        if not self.cumhist_nets:
            return np.clip(value_pred, 0.0, 1.0)
        cumhist_pred = np.mean(
            [net.predict(F[:, self._cumhist_cols]) for net in self.cumhist_nets], axis=0
        )
        return np.clip(np.maximum(value_pred, cumhist_pred), 0.0, 1.0)

    def generate(self, volume: Volume, time: int | None = None) -> TransferFunction1D:
        """Regenerate the 1D TF for ``volume``'s time step.

        *"The value of each element in the transfer function is obtained by
        passing that element's index (a scalar value), cumulative histogram
        value and time to the trained neural network."* — Sec. 4.2.2.
        """
        if not self.key_frames:
            raise ValueError("IATF has no key frames; add and train first")
        time = volume.time if time is None else time
        ch = CumulativeHistogram.of(volume, bins=self.bins, domain=(self.lo, self.hi))
        template = self.key_frames[0].tf
        values = template.entry_values()
        F = self._features(values, ch, time)
        opacity = self._predict_opacity(F)
        return TransferFunction1D(
            (self.lo, self.hi), self.entries, opacity=opacity, colormap=template.colormap
        )

    def opacity_volume(self, volume: Volume, time: int | None = None) -> np.ndarray:
        """Per-voxel opacity for a step: generate the TF, look up all voxels."""
        tf = self.generate(volume, time=time)
        return tf.opacity_at(volume.data)

    @classmethod
    def for_sequence(cls, sequence: VolumeSequence, **kwargs) -> "AdaptiveTransferFunction":
        """Construct with domain/time-range taken from a sequence."""
        times = sequence.times
        return cls(sequence.value_range, (times[0], times[-1]), **kwargs)

    # ------------------------------------------------------------------ #
    # Serialization (ship the trained IATF to render nodes, Sec. 4.2.3)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-serializable snapshot: pathway committees + key frames.

        This is the artifact Sec. 4.2.3 ships to *"parallel systems or
        remote machines for rendering"* — a few kilobytes, independent of
        the data size.
        """
        return {
            "domain": [self.lo, self.hi],
            "time_range": [self.t0, self.t1],
            "entries": self.entries,
            "bins": self.bins,
            "use_cumhist": self.use_cumhist,
            "use_time": self.use_time,
            "value_nets": [net.to_dict() for net in self.value_nets],
            "cumhist_nets": [net.to_dict() for net in self.cumhist_nets],
            "key_frames": [
                {
                    "time": kf.time,
                    "tf": kf.tf.to_dict(),
                    "cdf": kf.cumhist.cdf.tolist(),
                    "cdf_lo": kf.cumhist.lo,
                    "cdf_hi": kf.cumhist.hi,
                }
                for kf in self.key_frames
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AdaptiveTransferFunction":
        """Inverse of :meth:`to_dict`."""
        iatf = cls(
            payload["domain"], payload["time_range"], entries=payload["entries"],
            bins=payload["bins"], committee=max(len(payload["value_nets"]), 1),
            use_cumhist=payload["use_cumhist"], use_time=payload["use_time"],
        )
        iatf.value_nets = [NeuralNetwork.from_dict(n) for n in payload["value_nets"]]
        iatf.cumhist_nets = [NeuralNetwork.from_dict(n) for n in payload["cumhist_nets"]]
        iatf.key_frames = [
            KeyFrame(
                time=int(kf["time"]),
                tf=TransferFunction1D.from_dict(kf["tf"]),
                cumhist=CumulativeHistogram(
                    cdf=np.asarray(kf["cdf"], dtype=np.float64),
                    lo=float(kf["cdf_lo"]), hi=float(kf["cdf_hi"]),
                ),
            )
            for kf in payload["key_frames"]
        ]
        return iatf
