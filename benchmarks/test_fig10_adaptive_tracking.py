"""Fig. 10 — fixed vs adaptive tracking criterion on the swirling flow.

Paper claim: with a conventional fixed value-range criterion, *"as the
data values of the feature decreases with time, it eventually falls below
this fixed criterion and no longer tracked"*; the adaptive (IATF-derived)
criterion, built from two key frames with a decreasing tracked range,
*"can track the feature across all the time steps between the two key
frames"*.

The bench times adaptive tracking end-to-end (per-step TF regeneration +
4D region growing).
"""

from _helpers import seed_on_mask, train_swirl_iatf

from repro.core import FeatureTracker
from repro.data.swirl import feature_peak_at
from repro.metrics import tracking_continuity


def test_fig10_adaptive_tracking(swirl, benchmark):
    p0 = feature_peak_at(swirl, swirl.times[0])
    seed = seed_on_mask(swirl, "feature", min_value=0.8 * p0)
    tracker = FeatureTracker(opacity_threshold=0.1)
    iatf = train_swirl_iatf(swirl)

    adaptive = benchmark(lambda: tracker.track_adaptive(swirl, seed, iatf))
    fixed = tracker.track_fixed(swirl, seed, lo=0.45 * p0, hi=1.1 * p0)

    truth = [v.mask("feature") for v in swirl]
    c_fixed = tracking_continuity(fixed.masks, truth, min_voxels=10)
    c_adaptive = tracking_continuity(adaptive.masks, truth, min_voxels=10)

    print("\nFig. 10 tracked-voxel counts per step:")
    print(f"{'step':>6} {'fixed':>8} {'adaptive':>9}")
    for i, t in enumerate(swirl.times):
        print(f"{t:>6} {fixed.voxel_counts[i]:>8} {adaptive.voxel_counts[i]:>9}")
    print(f"continuity: fixed={c_fixed:.2f} adaptive={c_adaptive:.2f}")

    benchmark.extra_info["fixed_continuity"] = round(c_fixed, 3)
    benchmark.extra_info["adaptive_continuity"] = round(c_adaptive, 3)

    # The figure's outcome:
    assert fixed.voxel_counts[-1] == 0, "fixed criterion loses the feature"
    assert c_fixed < 1.0
    assert c_adaptive == 1.0, "adaptive criterion tracks to the end"
    assert min(adaptive.voxel_counts) > 50
