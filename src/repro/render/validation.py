"""Visual validation of extraction/tracking results (paper Sec. 8).

The paper's closing agenda: *"We are presently seeking a systematic way
for the scientists to validate the feature extraction and tracking
results.  A promising direction is to use visualization."*  This module is
that direction, implemented: compare a predicted extraction against a
reference (another method's result, an earlier iteration, or ground
truth) and show *where* they disagree.

- :func:`agreement_report` — voxel counts and rates for the four
  agreement classes (both / prediction-only / reference-only / neither);
- :func:`agreement_overlay` — a slice image color-coding the classes
  (green = agree, red = spurious, blue = missed), the picture a scientist
  scans for systematic errors;
- :func:`tracking_agreement` — the per-step curve of agreement for two
  tracking results, localizing *when* two methods diverge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics import jaccard
from repro.render.image import Image
from repro.volume.grid import Volume

AGREE_COLOR = (0.15, 0.7, 0.2)
SPURIOUS_COLOR = (0.85, 0.15, 0.15)
MISSED_COLOR = (0.15, 0.3, 0.85)


@dataclass(frozen=True)
class AgreementReport:
    """Voxel-level agreement between a prediction and a reference."""

    both: int
    prediction_only: int
    reference_only: int
    neither: int

    @property
    def total(self) -> int:
        """All voxels."""
        return self.both + self.prediction_only + self.reference_only + self.neither

    @property
    def jaccard(self) -> float:
        """IoU of the two masks."""
        union = self.both + self.prediction_only + self.reference_only
        return 1.0 if union == 0 else self.both / union

    @property
    def spurious_rate(self) -> float:
        """Fraction of predicted voxels absent from the reference."""
        pred = self.both + self.prediction_only
        return 0.0 if pred == 0 else self.prediction_only / pred

    @property
    def missed_rate(self) -> float:
        """Fraction of reference voxels absent from the prediction."""
        ref = self.both + self.reference_only
        return 0.0 if ref == 0 else self.reference_only / ref


def agreement_report(predicted, reference) -> AgreementReport:
    """Count the four agreement classes between two boolean masks."""
    predicted = np.asarray(predicted, dtype=bool)
    reference = np.asarray(reference, dtype=bool)
    if predicted.shape != reference.shape:
        raise ValueError(
            f"mask shapes differ: {predicted.shape} vs {reference.shape}"
        )
    both = int(np.count_nonzero(predicted & reference))
    p_only = int(np.count_nonzero(predicted & ~reference))
    r_only = int(np.count_nonzero(~predicted & reference))
    neither = int(predicted.size - both - p_only - r_only)
    return AgreementReport(both, p_only, r_only, neither)


def agreement_overlay(volume: Volume, predicted, reference, axis: int, index: int,
                      strength: float = 0.85) -> Image:
    """Slice image with agreement classes tinted over the grayscale data.

    Green where both masks agree on the feature, red where the prediction
    is spurious, blue where it misses the reference.
    """
    predicted = np.asarray(predicted, dtype=bool)
    reference = np.asarray(reference, dtype=bool)
    if predicted.shape != volume.shape or reference.shape != volume.shape:
        raise ValueError("masks must match the volume shape")
    if not 0.0 <= strength <= 1.0:
        raise ValueError(f"strength must be in [0, 1], got {strength}")
    from repro.render.slicer import slice_image

    base = slice_image(volume, axis, index).pixels.copy()
    slicer: list = [slice(None)] * 3
    slicer[axis] = index
    p = predicted[tuple(slicer)]
    r = reference[tuple(slicer)]
    for mask2d, color in (
        (p & r, AGREE_COLOR),
        (p & ~r, SPURIOUS_COLOR),
        (~p & r, MISSED_COLOR),
    ):
        tint = np.asarray(color, dtype=np.float32)
        base[mask2d, :3] = (1 - strength) * base[mask2d, :3] + strength * tint
        base[mask2d, 3] = 1.0
    return Image.from_array(base)


def tracking_agreement(result_a, result_b) -> list[tuple[int, float]]:
    """Per-step Jaccard between two tracking results.

    Both results must cover the same steps (``TrackResult`` or
    ``PredictionTrackResult`` — anything with ``masks`` and ``times``).
    Returns ``(time, jaccard)`` pairs; a drop localizes where the two
    methods diverge.
    """
    if list(result_a.times) != list(result_b.times):
        raise ValueError("tracking results cover different steps")
    return [
        (t, jaccard(ma, mb))
        for t, ma, mb in zip(result_a.times, result_a.masks, result_b.masks)
    ]
