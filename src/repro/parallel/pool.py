"""Persistent worker-pool runtime: one spawn cost per run, not per map.

Every :func:`repro.parallel.executor.map_timesteps` call with the process
backend used to build and tear down a fresh ``multiprocessing.Pool`` —
acceptable for one long map, pure overhead for a pipeline that issues a
map per stage (classify all steps, generate TFs, render all steps).  A
:class:`WorkerPool` keeps the workers resident instead:

- **lazy spawn**: workers fork/spawn on the first dispatched task, never
  before, so constructing a pool is free;
- **reuse**: ``map_timesteps(pool=...)``, ``classify_sequence(pool=...)``,
  ``render_sequence(pool=...)`` and the pipelined
  :class:`~repro.run.runner.PipelineRunner` all dispatch onto the same
  resident workers;
- **crash detection + respawn**: a worker that dies mid-task (OOM kill,
  segfault, the fault injector's SIGKILL crash mode) is detected through
  its process sentinel, the attempt it carried fails as a structured
  ``WorkerCrash`` error that flows through the *existing* retry policy,
  and a fresh worker takes its slot;
- **digest-keyed broadcast**: :meth:`WorkerPool.broadcast` pickles a
  heavy invariant (a trained network, a camera, per-run parameters)
  exactly once and ships the blob to each worker at most once; task
  payloads carry a ~50-byte :class:`BroadcastRef` instead of re-pickling
  the object per task (respawned workers transparently re-receive the
  blobs they need);
- **futures**: :meth:`WorkerPool.submit` returns a :class:`PoolFuture`
  with done-callbacks, which is what lets the pipelined runner overlap
  ``render(t)`` of early steps with ``classify(t')`` of late ones.

Completion is event-driven — the scheduler sleeps in
``multiprocessing.connection.wait`` on the worker pipes and process
sentinels, waking only for a result, a death, a retry-backoff deadline,
or a per-attempt timeout.  There is no polling loop.

Scheduling is parent-driven: each worker holds at most one task, so the
parent always knows which task died with which worker (a task popped
from a shared queue by a worker that crashes pre-acknowledgement would
be lost silently).  Retry bookkeeping stays in the caller via the
``on_attempt_fail`` hook — :func:`map_timesteps` passes its ``_MapState``
so counters, backoff, and ``on_error`` semantics are byte-identical to
the per-map pool backend.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import heapq
import multiprocessing as mp
import os
import pickle
import queue
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection

from repro.obs import get_metrics
from repro.parallel.executor import (
    RetryPolicy,
    TaskError,
    TaskFailure,
    _resolve_workers,
    _timeout_error,
)


class PoolError(RuntimeError):
    """The pool cannot service the request (closed, bad ref, ...)."""


@dataclass(frozen=True)
class BroadcastRef:
    """Tiny picklable stand-in for a broadcast object in a task payload."""

    digest: str

    def __repr__(self) -> str:  # keep payload reprs/logs short
        return f"BroadcastRef({self.digest[:12]}...)"


def resolve_broadcasts(obj, registry: dict):
    """Replace every :class:`BroadcastRef` in a payload with its object.

    Walks tuples, lists, and dict values (the shapes task payloads are
    built from); any other container passes through untouched.
    """
    if isinstance(obj, BroadcastRef):
        try:
            return registry[obj.digest]
        except KeyError:
            raise PoolError(f"unknown broadcast digest {obj.digest[:12]}...") from None
    if isinstance(obj, tuple):
        return tuple(resolve_broadcasts(v, registry) for v in obj)
    if isinstance(obj, list):
        return [resolve_broadcasts(v, registry) for v in obj]
    if isinstance(obj, dict):
        return {k: resolve_broadcasts(v, registry) for k, v in obj.items()}
    return obj


def _collect_refs(obj, out: set) -> None:
    if isinstance(obj, BroadcastRef):
        out.add(obj.digest)
    elif isinstance(obj, (tuple, list)):
        for v in obj:
            _collect_refs(v, out)
    elif isinstance(obj, dict):
        for v in obj.values():
            _collect_refs(v, out)


def _worker_main(conn) -> None:
    """Resident worker loop: broadcasts cached per process, one task at a
    time, outcomes sent back on the same duplex pipe.  Never raises —
    task exceptions travel back as ``(type, message, traceback)`` text.
    """
    broadcasts: dict = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "stop":
            break
        if kind == "broadcast":
            _, digest, blob = message
            broadcasts[digest] = pickle.loads(blob)
            continue
        # ("task", task_id, fn, item, attempt, injector, fault_index)
        _, task_id, fn, item, attempt, injector, fault_index = message
        start = time.perf_counter()
        try:
            if injector is not None:
                injector.maybe_raise(fault_index, attempt)
            result = fn(resolve_broadcasts(item, broadcasts))
            outcome = (task_id, True, result, time.perf_counter() - start, None)
        except Exception as exc:  # noqa: BLE001 - the pool owns error policy
            outcome = (task_id, False, None, time.perf_counter() - start,
                       (type(exc).__name__, str(exc), traceback.format_exc()))
        try:
            conn.send(outcome)
        except Exception as exc:  # noqa: BLE001 - unpicklable result
            conn.send((task_id, False, None, time.perf_counter() - start,
                       (type(exc).__name__, f"result transport failed: {exc}",
                        traceback.format_exc())))
    conn.close()


class PoolFuture:
    """Outcome handle for one :meth:`WorkerPool.submit` call.

    Resolves once the task has either succeeded or exhausted its retry
    budget.  ``done_callbacks`` fire in the parent process, inside the
    pool's service loop — a callback may submit follow-up tasks, which is
    how dataflow chains (``tf(t) -> render(t)``) are built.
    """

    def __init__(self, pool: "WorkerPool", index: int) -> None:
        self._pool = pool
        self.index = index
        self._done = False
        self.value = None
        self.failure: TaskFailure | None = None
        self.elapsed = 0.0
        self.attempts = 0
        self._callbacks: list = []

    def done(self) -> bool:
        """Whether the task has finished (successfully or not)."""
        return self._done

    @property
    def ok(self) -> bool:
        """Whether the task finished successfully."""
        return self._done and self.failure is None

    def add_done_callback(self, fn) -> None:
        """Run ``fn(self)`` when the future resolves (immediately if done)."""
        if self._done:
            fn(self)
        else:
            self._callbacks.append(fn)

    def result(self):
        """Block (servicing the pool) until resolved; raise on failure."""
        self._pool._pump(lambda: self._done)
        if self.failure is not None:
            raise TaskError(self.failure)
        return self.value

    def _resolve(self, value, elapsed: float, failure: TaskFailure | None) -> None:
        self.value = value
        self.elapsed = elapsed
        self.failure = failure
        self._done = True
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)


class _Task:
    """Parent-side record of one submitted task across its attempts."""

    __slots__ = ("task_id", "fn", "item", "index", "attempt", "injector",
                 "fault_index", "policy", "on_fail", "future", "refs",
                 "deadline", "abandoned", "cancelled")

    def __init__(self, task_id, fn, item, index, injector, fault_index,
                 policy, on_fail, future, refs):
        self.task_id = task_id
        self.fn = fn
        self.item = item
        self.index = index
        self.attempt = 1
        self.injector = injector
        self.fault_index = fault_index
        self.policy = policy
        self.on_fail = on_fail
        self.future = future
        self.refs = refs
        self.deadline = None      # per-attempt wall deadline while dispatched
        self.abandoned = False    # timed out / cancelled while on a worker
        self.cancelled = False


class _WorkerSlot:
    """One resident worker process plus its duplex pipe and send ledger."""

    __slots__ = ("process", "conn", "busy", "sent_digests")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.busy: _Task | None = None
        self.sent_digests: set = set()


class WorkerPool:
    """A long-lived process pool shared across maps, stages, and runs.

    Parameters
    ----------
    workers:
        Resident worker count (default: cores - 1, same as the farm).
    context:
        A ``multiprocessing`` context; defaults to fork where available
        (cheap, shares the parent's pages) and spawn elsewhere — the
        same policy as :func:`map_timesteps`.

    Use as a context manager (or call :meth:`close`) so the resident
    workers are reaped deterministically::

        with WorkerPool(workers=4) as pool:
            clf_ref = pool.broadcast(classifier)
            out = map_timesteps(fn, payloads, pool=pool)      # map 1
            out = map_timesteps(fn2, payloads2, pool=pool)    # map 2: no respawn
    """

    def __init__(self, workers: int | None = None, context=None) -> None:
        self.workers = _resolve_workers(workers)
        if context is None:
            context = (mp.get_context("fork") if hasattr(os, "fork")
                       else mp.get_context("spawn"))
        self._ctx = context
        self._slots: list[_WorkerSlot] = []
        self._ready: deque[_Task] = deque()
        self._delayed: list = []            # heap of (eligible_at, seq, task)
        self._broadcasts: dict[str, bytes] = {}
        self._seq = 0
        self._next_task_id = 0
        self._closed = False
        self.respawns = 0
        self.spawned = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def started_workers(self) -> int:
        """Workers currently resident (0 before the first dispatch)."""
        return sum(1 for s in self._slots if s.process.is_alive())

    def pids(self) -> list[int]:
        """PIDs of the live resident workers (for chaos tests)."""
        return [s.process.pid for s in self._slots if s.process.is_alive()]

    def prespawn(self) -> int:
        """Spawn every worker slot now instead of lazily; returns the count.

        Normally spawning is deferred to the first dispatched task.  A
        long-lived multi-threaded host (the serve daemon) wants the forks
        to happen at startup, while the process is still effectively
        single-threaded — forking later, with an event loop mid-mutation
        in another thread, can copy held locks into the child.
        """
        if self._closed:
            raise PoolError("cannot prespawn on a closed pool")
        while len(self._live_slots()) < self.workers:
            self._slots.append(self._spawn_slot())
        return len(self._live_slots())

    # ------------------------------------------------------------------ #
    # Broadcast registry
    # ------------------------------------------------------------------ #
    def broadcast(self, obj) -> BroadcastRef:
        """Register a heavy invariant; returns the ref to embed in payloads.

        The object is pickled exactly once, here.  The blob ships to each
        worker at most once (re-shipped only to respawned workers), so a
        classifier that used to ride in every task payload now crosses
        each worker pipe a single time per run.
        """
        if self._closed:
            raise PoolError("cannot broadcast on a closed pool")
        blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.blake2b(blob, digest_size=16).hexdigest()
        if digest not in self._broadcasts:
            self._broadcasts[digest] = blob
        return BroadcastRef(digest)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, fn, item, *, index: int = 0,
               retry: RetryPolicy | int | None = None,
               injector=None, fault_index: int | None = None,
               on_attempt_fail=None) -> PoolFuture:
        """Schedule ``fn(item)`` on a resident worker; returns a future.

        ``retry`` follows :func:`map_timesteps` semantics (a policy, a
        bare int of retries, or ``None`` for no retries).  Each failed
        attempt is reported to ``on_attempt_fail(index, attempt, elapsed,
        error)``, which returns the backoff delay for a retry or ``None``
        to finalize the failure — :func:`map_timesteps` wires its own
        ``_MapState.fail`` here so the map semantics (counters,
        ``on_error="raise"``/``"skip"``) are shared; bare submits get a
        default handler with the same counter behaviour.
        """
        if self._closed:
            raise PoolError("cannot submit to a closed pool")
        if retry is None:
            policy = RetryPolicy()
        elif isinstance(retry, int):
            policy = RetryPolicy(max_retries=retry)
        else:
            policy = retry
        if on_attempt_fail is None:
            on_attempt_fail = self._default_fail_handler(policy)
        refs: set = set()
        _collect_refs(item, refs)
        missing = [d for d in refs if d not in self._broadcasts]
        if missing:
            raise PoolError(f"payload references unknown broadcast digest(s) "
                            f"{[d[:12] for d in missing]}")
        future = PoolFuture(self, index)
        task = _Task(self._next_task_id, fn, item, index, injector,
                     index if fault_index is None else fault_index,
                     policy, on_attempt_fail, future, refs)
        self._next_task_id += 1
        self._ready.append(task)
        get_metrics().counter("pool.tasks").inc()
        self._dispatch()
        return future

    def _default_fail_handler(self, policy: RetryPolicy):
        metrics = get_metrics()

        def handle(index: int, attempt: int, elapsed: float, error) -> float | None:
            if error[0] == "TaskTimeout":
                metrics.counter("executor.timeouts").inc()
            if attempt <= policy.max_retries:
                metrics.counter("executor.retries").inc()
                return policy.delay(attempt)
            metrics.counter("executor.failures").inc()
            return None

        return handle

    # ------------------------------------------------------------------ #
    # Waiting
    # ------------------------------------------------------------------ #
    def wait(self, futures) -> None:
        """Service the pool until every given future has resolved."""
        futures = list(futures)
        self._pump(lambda: all(f.done() for f in futures))

    def cancel(self, futures) -> None:
        """Drop the unresolved futures in the list.

        Queued attempts are discarded; an attempt already running on a
        worker is abandoned (its eventual result is ignored; the slot
        frees when the call returns, exactly like a timed-out attempt).
        Each cancelled future resolves with a ``Cancelled`` failure.
        """
        pending = {id(f) for f in futures if not f.done()}
        if not pending:
            return
        kept = []
        for entry in self._delayed:
            if id(entry[2].future) in pending:
                entry[2].cancelled = True
                self._finalize_cancel(entry[2])
            else:
                kept.append(entry)
        if len(kept) != len(self._delayed):
            self._delayed = kept
            heapq.heapify(self._delayed)
        # Cancelled entries stay queued; ``_next_ready`` discards them.
        for task in self._ready:
            if id(task.future) in pending:
                task.cancelled = True
                self._finalize_cancel(task)
        for slot in self._slots:
            task = slot.busy
            if task is not None and id(task.future) in pending:
                task.abandoned = True
                task.cancelled = True
                self._finalize_cancel(task)

    def _finalize_cancel(self, task: _Task) -> None:
        if not task.future.done():
            task.future._resolve(None, 0.0, TaskFailure(
                task.index, task.attempt, "Cancelled",
                "task cancelled before completion"))

    # ------------------------------------------------------------------ #
    # Scheduler internals
    # ------------------------------------------------------------------ #
    def _spawn_slot(self) -> _WorkerSlot:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(target=_worker_main, args=(child_conn,),
                                    daemon=True)
        process.start()
        child_conn.close()
        self.spawned += 1
        get_metrics().counter("pool.spawns").inc()
        return _WorkerSlot(process, parent_conn)

    def _dispatch(self) -> None:
        """Hand queued tasks to idle workers, spawning lazily up to the cap."""
        while True:
            task = self._next_ready()
            if task is None:
                return
            slot = self._idle_slot()
            if slot is None:
                self._ready.appendleft(task)
                return
            self._send_task(slot, task)

    def _next_ready(self) -> _Task | None:
        while self._ready:
            task = self._ready.popleft()
            if not task.cancelled:
                return task
        return None

    def _idle_slot(self) -> _WorkerSlot | None:
        for slot in self._slots:
            if slot.busy is None and slot.process.is_alive():
                return slot
        if len(self._live_slots()) < self.workers:
            slot = self._spawn_slot()
            self._slots.append(slot)
            return slot
        return None

    def _live_slots(self) -> list[_WorkerSlot]:
        return [s for s in self._slots if s.process.is_alive()]

    def _send_task(self, slot: _WorkerSlot, task: _Task) -> None:
        try:
            for digest in task.refs - slot.sent_digests:
                slot.conn.send(("broadcast", digest, self._broadcasts[digest]))
                slot.sent_digests.add(digest)
                get_metrics().counter("pool.broadcast.sends").inc()
            slot.conn.send(("task", task.task_id, task.fn, task.item,
                            task.attempt, task.injector, task.fault_index))
        except (BrokenPipeError, OSError):
            # The worker died between dispatch decisions; treat it like a
            # mid-task crash so the attempt flows through the retry policy.
            self._handle_dead_slot(slot, task)
            return
        slot.busy = task
        task.deadline = (None if task.policy.timeout is None
                         else time.monotonic() + task.policy.timeout)

    def _pump(self, satisfied) -> None:
        """Run the event loop until ``satisfied()`` — the only wait point."""
        while not satisfied():
            self._dispatch()
            if satisfied():
                return
            timeout = self._next_deadline()
            waitables = []
            for slot in self._slots:
                waitables.append(slot.conn)
                waitables.append(slot.process.sentinel)
            if not waitables and timeout is None:
                if satisfied():
                    return
                raise PoolError("pool deadlock: nothing in flight, nothing delayed, "
                                "and the wait condition is unsatisfied")
            ready = connection.wait(waitables, timeout)
            now = time.monotonic()
            ready_set = set(ready)
            for slot in list(self._slots):
                if slot.conn in ready_set:
                    self._drain_slot(slot)
            for slot in list(self._slots):
                if (slot.process.sentinel in ready_set
                        and not slot.process.is_alive()):
                    self._handle_dead_slot(slot, slot.busy)
            self._expire_timeouts(now)
            self._promote_delayed(now)

    def _next_deadline(self) -> float | None:
        """Seconds until the next backoff-eligibility or attempt timeout."""
        candidates = []
        if self._delayed:
            candidates.append(self._delayed[0][0])
        for slot in self._slots:
            if slot.busy is not None and slot.busy.deadline is not None:
                candidates.append(slot.busy.deadline)
        if not candidates:
            return None
        return max(0.0, min(candidates) - time.monotonic())

    def _drain_slot(self, slot: _WorkerSlot) -> None:
        while slot.conn.poll():
            try:
                task_id, ok, result, elapsed, error = slot.conn.recv()
            except (EOFError, OSError):
                # Death with a partial write: the sentinel pass handles it.
                return
            task = slot.busy
            slot.busy = None
            if task is None or task.task_id != task_id or task.abandoned:
                continue   # stale result of an abandoned/timed-out attempt
            if ok:
                task.future.attempts = task.attempt
                task.future._resolve(result, elapsed, None)
            else:
                self._attempt_failed(task, elapsed, error)

    def _handle_dead_slot(self, slot: _WorkerSlot, task: _Task | None) -> None:
        """A worker died: fail its in-flight attempt, retire the slot."""
        try:
            slot.conn.close()
        except OSError:
            pass
        exitcode = slot.process.exitcode
        if slot in self._slots:
            self._slots.remove(slot)
        self.respawns += 1
        get_metrics().counter("pool.respawns").inc()
        if task is None or task.abandoned or task.cancelled:
            return
        error = ("WorkerCrash",
                 f"worker pid {slot.process.pid} died with exitcode {exitcode} "
                 f"while running item {task.index} (attempt {task.attempt})", "")
        self._attempt_failed(task, 0.0, error)

    def _attempt_failed(self, task: _Task, elapsed: float, error) -> None:
        delay = task.on_fail(task.index, task.attempt, elapsed, error)
        if delay is None:
            task.future.attempts = task.attempt
            task.future._resolve(None, elapsed, TaskFailure(
                task.index, task.attempt, error[0], error[1], error[2]))
            return
        task.attempt += 1
        task.deadline = None
        task.abandoned = False
        if delay > 0:
            self._seq += 1
            heapq.heappush(self._delayed, (time.monotonic() + delay, self._seq, task))
        else:
            self._ready.append(task)

    def _expire_timeouts(self, now: float) -> None:
        for slot in self._slots:
            task = slot.busy
            if (task is None or task.abandoned or task.deadline is None
                    or now <= task.deadline):
                continue
            # Abandon the attempt; the slot frees when the stuck call
            # eventually returns (same semantics as the per-map backend).
            task.abandoned = True
            self._attempt_failed(task, 0.0, _timeout_error(task.policy.timeout))

    def _promote_delayed(self, now: float) -> None:
        while self._delayed and self._delayed[0][0] <= now:
            _, _, task = heapq.heappop(self._delayed)
            if not task.cancelled:
                self._ready.append(task)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self, timeout: float = 5.0) -> None:
        """Stop and reap the resident workers (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for slot in self._slots:
            try:
                slot.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + timeout
        for slot in self._slots:
            slot.process.join(max(0.0, deadline - time.monotonic()))
            if slot.process.is_alive():
                slot.process.terminate()
                slot.process.join(1.0)
            try:
                slot.conn.close()
            except OSError:
                pass
        self._slots = []

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close(timeout=0.5)
        except Exception:  # noqa: BLE001
            pass


class PoolDispatcher:
    """Thread-confined driver for a resident pool: the bridge that lets an
    event loop (or any thread) run pool-backed work safely.

    A :class:`WorkerPool` is deliberately single-threaded: its scheduler
    state (slots, queues, the ``connection.wait`` pump) is only
    consistent when one thread drives it.  An asyncio server cannot call
    ``map_timesteps(pool=...)`` from handler coroutines — every handler
    runs on the loop thread, and the pump would block the loop.  The
    dispatcher solves both at once: it owns one dedicated daemon thread
    plus the pool, executes submitted jobs **on that thread, one at a
    time, in submission order**, and hands the caller a
    :class:`concurrent.futures.Future` (which asyncio adapts with
    ``asyncio.wrap_future``).  A job is any callable; because it runs on
    the pool's home thread it may freely drive the pool —
    ``map_timesteps(pool=dispatcher.pool)``, ``pool.submit``/``wait`` —
    and fan its work across the resident workers.

    Jobs serialize against each other by design: one pool, one set of
    workers, so two concurrent pool-backed jobs would only contend.  The
    serve daemon layers request coalescing and a bounded queue on top.

    ``prespawn=True`` spawns the pool's workers as the dispatcher's
    first job, so the forks happen at startup before the host process
    grows threads (see :meth:`WorkerPool.prespawn`).
    """

    def __init__(self, workers: int | None = None, context=None,
                 pool: WorkerPool | None = None, prespawn: bool = False) -> None:
        self._pool = pool if pool is not None else WorkerPool(workers=workers,
                                                              context=context)
        self._own_pool = pool is None
        self._jobs: queue.SimpleQueue = queue.SimpleQueue()
        self._closed = False
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-pool-dispatcher")
        self._thread.start()
        if prespawn and self._pool.workers > 1:
            self.submit(self._pool.prespawn)

    @property
    def pool(self) -> WorkerPool:
        """The owned pool — only touch it from inside a submitted job."""
        return self._pool

    def pending(self) -> int:
        """Jobs enqueued but not yet picked up (approximate, lock-free)."""
        return self._jobs.qsize()

    def submit(self, fn, *args, **kwargs) -> concurrent.futures.Future:
        """Schedule ``fn(*args, **kwargs)`` on the dispatcher thread.

        Thread-safe; returns immediately.  The future resolves with the
        job's return value or exception.  Cancelling the future works
        until the job starts (standard ``concurrent.futures`` semantics).
        """
        if self._closed:
            raise PoolError("cannot submit to a closed dispatcher")
        future: concurrent.futures.Future = concurrent.futures.Future()
        self._jobs.put((future, fn, args, kwargs))
        return future

    def _run(self) -> None:
        while True:
            job = self._jobs.get()
            if job is None:
                break
            future, fn, args, kwargs = job
            if not future.set_running_or_notify_cancel():
                continue
            try:
                future.set_result(fn(*args, **kwargs))
            except BaseException as exc:  # noqa: BLE001 - future owns policy
                future.set_exception(exc)

    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting jobs, drain the queue, reap the pool (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._jobs.put(None)
        self._thread.join(timeout)
        if self._own_pool:
            self._pool.close()

    def __enter__(self) -> "PoolDispatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
