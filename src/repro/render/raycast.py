"""Orthographic ray casting with front-to-back compositing.

Vectorization strategy (per the HPC guides: no per-pixel Python loops):
the only Python loop is over *sample shells* along the rays.  At each shell
every active ray contributes one trilinear sample, evaluated with
:func:`scipy.ndimage.map_coordinates`; classification, shading, and
compositing for the whole shell are single numpy expressions over the
active-ray set.  Early ray termination drops rays whose accumulated alpha
passes 0.99 from the active set — same optimization GPU ray casters use.

Two entry points:

- :func:`render_volume` — scalar volume + :class:`TransferFunction1D`
  (classification happens per sample, i.e. post-interpolative lookup);
- :func:`render_rgba_volume` — a precomputed RGBA volume (used by the
  multi-pass tracked-feature renderer where the per-voxel color/opacity
  rule is not a pure function of the scalar value).
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.obs import get_metrics
from repro.render.camera import Camera
from repro.render.image import Image
from repro.render.shading import phong_shade
from repro.transfer.tf1d import TransferFunction1D
from repro.volume.grid import Volume

_ALPHA_CUTOFF = 0.99


def _sample(field: np.ndarray, coords: np.ndarray) -> np.ndarray:
    """Trilinear sample of ``field`` at ``(n, 3)`` voxel coordinates."""
    return ndimage.map_coordinates(
        field, coords.T, order=1, mode="constant", cval=0.0, prefilter=False
    )


def _composite_shells(
    n_pixels: int,
    origins: np.ndarray,
    directions: np.ndarray,
    n_samples: int,
    step: float,
    shade_fn,
    sample_rgba,
):
    """Shared marching loop: front-to-back composite over sample shells.

    ``directions`` is per-ray ``(n, 3)`` (orthographic cameras replicate a
    single vector; perspective cameras diverge).  ``sample_rgba(coords,
    active)`` returns ``(rgb, alpha)`` for the active rays' sample
    positions; ``shade_fn(rgb, coords, active)`` applies lighting
    (identity when shading is off).
    """
    accum_rgb = np.zeros((n_pixels, 3), dtype=np.float32)
    accum_a = np.zeros(n_pixels, dtype=np.float32)
    active = np.arange(n_pixels)
    for s in range(n_samples):
        coords = origins[active] + (s * step) * directions[active]
        rgb, alpha = sample_rgba(coords, active)
        if shade_fn is not None:
            rgb = shade_fn(rgb, coords, active)
        # Opacity correction for the sampling distance (standard DVR):
        # alpha_corrected = 1 - (1 - alpha)^step keeps appearance invariant
        # under step-size changes.
        if step != 1.0:
            alpha = 1.0 - np.power(1.0 - alpha, step)
        weight = (1.0 - accum_a[active]) * alpha
        accum_rgb[active] += weight[:, None] * rgb
        accum_a[active] += weight
        still = accum_a[active] < _ALPHA_CUTOFF
        if not still.all():
            active = active[still]
            if len(active) == 0:
                break
    return accum_rgb, accum_a


def render_volume(
    volume,
    tf: TransferFunction1D,
    camera: Camera | None = None,
    step: float = 1.0,
    shading: bool = True,
    background=(0.0, 0.0, 0.0),
) -> Image:
    """Direct volume rendering of a scalar volume through a 1D TF.

    Parameters
    ----------
    volume:
        :class:`Volume` or raw 3D array.
    tf:
        Transfer function supplying color and opacity per sample value.
    camera:
        Defaults to a 128² three-quarter view.
    step:
        Ray sampling distance in voxels (1.0 ≈ view-aligned slice spacing).
    shading:
        Gradient Phong shading (the Sec. 7 configuration).  Costs three
        extra trilinear fetches per sample.
    """
    data = volume.data if isinstance(volume, Volume) else np.asarray(volume, dtype=np.float32)
    if data.ndim != 3:
        raise ValueError(f"expected a 3D volume, got ndim={data.ndim}")
    camera = camera or Camera()
    origins, directions, n_samples = camera.ray_grid(data.shape, step=step)
    n_pixels = camera.height * camera.width

    if shading:
        gz, gy, gx = np.gradient(data.astype(np.float32, copy=False))
        grads = (gz, gy, gx)
        forward, _, _ = camera.basis()
        to_viewer = (-forward).astype(np.float32)

        def shade_fn(rgb, coords, active):
            g = np.stack([_sample(gc, coords) for gc in grads], axis=-1)
            return phong_shade(rgb, g, light_dir=to_viewer, view_dir=to_viewer)

    else:
        shade_fn = None

    def sample_rgba(coords, active):
        values = _sample(data, coords)
        rgb = tf.color_at(values).astype(np.float32)
        alpha = tf.opacity_at(values).astype(np.float32)
        return rgb, alpha

    with get_metrics().span("render.volume", pixels=n_pixels, samples=n_samples,
                            voxels=int(data.size), shading=shading):
        accum_rgb, accum_a = _composite_shells(
            n_pixels, origins, directions, n_samples, step, shade_fn, sample_rgba
        )
    get_metrics().counter("render.frames").inc()
    rgba = np.concatenate([accum_rgb, accum_a[:, None]], axis=1)
    return Image.from_array(
        rgba.reshape(camera.height, camera.width, 4), background=background
    )


def render_rgba_volume(
    rgba_volume: np.ndarray,
    camera: Camera | None = None,
    step: float = 1.0,
    shading_field: np.ndarray | None = None,
    background=(0.0, 0.0, 0.0),
) -> Image:
    """Render a precomputed per-voxel RGBA volume.

    ``rgba_volume`` has shape ``(nz, ny, nx, 4)``.  When ``shading_field``
    (a scalar volume) is given, its gradient shades the samples.  This path
    implements the paper's multi-pass rule where color/opacity depend on a
    region-growing texture, not just the scalar value.
    """
    rgba_volume = np.asarray(rgba_volume, dtype=np.float32)
    if rgba_volume.ndim != 4 or rgba_volume.shape[3] != 4:
        raise ValueError(f"expected (nz, ny, nx, 4) volume, got {rgba_volume.shape}")
    camera = camera or Camera()
    shape3 = rgba_volume.shape[:3]
    origins, directions, n_samples = camera.ray_grid(shape3, step=step)
    n_pixels = camera.height * camera.width
    channels = [np.ascontiguousarray(rgba_volume[..., c]) for c in range(4)]

    if shading_field is not None:
        field = np.asarray(shading_field, dtype=np.float32)
        if field.shape != shape3:
            raise ValueError("shading_field shape must match the RGBA volume grid")
        gz, gy, gx = np.gradient(field)
        grads = (gz, gy, gx)
        forward, _, _ = camera.basis()
        to_viewer = (-forward).astype(np.float32)

        def shade_fn(rgb, coords, active):
            g = np.stack([_sample(gc, coords) for gc in grads], axis=-1)
            return phong_shade(rgb, g, light_dir=to_viewer, view_dir=to_viewer)

    else:
        shade_fn = None

    def sample_rgba(coords, active):
        rgb = np.stack([_sample(channels[c], coords) for c in range(3)], axis=-1)
        alpha = _sample(channels[3], coords)
        return rgb.astype(np.float32), np.clip(alpha, 0.0, 1.0).astype(np.float32)

    with get_metrics().span("render.rgba_volume", pixels=n_pixels, samples=n_samples):
        accum_rgb, accum_a = _composite_shells(
            n_pixels, origins, directions, n_samples, step, shade_fn, sample_rgba
        )
    get_metrics().counter("render.frames").inc()
    rgba = np.concatenate([accum_rgb, accum_a[:, None]], axis=1)
    return Image.from_array(
        rgba.reshape(camera.height, camera.width, 4), background=background
    )
