"""Determinism guarantees: same seed ⇒ bit-identical results.

Every experiment in EXPERIMENTS.md is only trustworthy if reruns
reproduce it exactly; these tests pin the determinism contract across the
stochastic components.
"""

import numpy as np
from scipy import ndimage

from repro import (
    AdaptiveTransferFunction,
    DataSpaceClassifier,
    FeatureTracker,
    Oracle,
    ShellFeatureExtractor,
    TransferFunction1D,
    make_argon_sequence,
    make_cosmology_sequence,
    make_swirl_sequence,
    make_vortex_sequence,
)
from repro.data.argon import ring_value_band
from repro.segmentation import grow_bricked, label_bricked


class TestGeneratorDeterminism:
    def test_all_generators_reproducible(self):
        for maker, kwargs in [
            (make_argon_sequence, dict(shape=(12, 16, 16), times=[195, 255])),
            (make_cosmology_sequence, dict(shape=(16, 16, 16), times=[130, 310], n_blobs=30)),
            (make_vortex_sequence, dict(shape=(16, 16, 16), times=[50, 74])),
            (make_swirl_sequence, dict(shape=(16, 16, 16), times=[23, 62])),
        ]:
            a = maker(seed=9, **kwargs)
            b = maker(seed=9, **kwargs)
            for va, vb in zip(a, b):
                assert np.array_equal(va.data, vb.data), maker.__name__
                for name in va.masks:
                    assert np.array_equal(va.mask(name), vb.mask(name))

    def test_different_seed_differs(self):
        a = make_argon_sequence(shape=(12, 16, 16), times=[195], seed=1)
        b = make_argon_sequence(shape=(12, 16, 16), times=[195], seed=2)
        assert not np.array_equal(a[0].data, b[0].data)


class TestTrainedModelDeterminism:
    def build_iatf(self, seq, seed=3):
        iatf = AdaptiveTransferFunction.for_sequence(seq, seed=seed, committee=2)
        for t in (seq.times[0], seq.times[-1]):
            lo, hi = ring_value_band(seq, t)
            tf = TransferFunction1D(seq.value_range).add_tent(
                (lo + hi) / 2, (hi - lo) * 2.5, 1.0)
            iatf.add_key_frame(seq.at_time(t), tf)
        iatf.train(epochs=60)
        return iatf

    def test_iatf_training_reproducible(self):
        seq = make_argon_sequence(shape=(12, 16, 16), times=[195, 225, 255], seed=7)
        a = self.build_iatf(seq)
        b = self.build_iatf(seq)
        mid = seq.at_time(225)
        assert np.array_equal(a.generate(mid).opacity, b.generate(mid).opacity)

    def test_classifier_training_reproducible(self):
        seq = make_cosmology_sequence(shape=(20, 20, 20), times=[310], n_blobs=30)
        vol = seq.at_time(310)

        def build():
            clf = DataSpaceClassifier(ShellFeatureExtractor(radius=2), seed=4)
            rng = np.random.default_rng(0)
            large = vol.mask("large")
            coords = np.argwhere(large)
            sel = coords[rng.choice(len(coords), size=40, replace=False)]
            pos = np.zeros(vol.shape, dtype=bool)
            pos[tuple(sel.T)] = True
            neg = np.zeros(vol.shape, dtype=bool)
            bg = np.argwhere(~large)
            selb = bg[rng.choice(len(bg), size=40, replace=False)]
            neg[tuple(selb.T)] = True
            clf.add_examples(vol, positive_mask=pos, negative_mask=neg)
            clf.train(epochs=80)
            return clf.classify(vol)

        assert np.array_equal(build(), build())

    def test_streaming_track_reproducible(self):
        """Two streaming runs of the same track are bit-identical — packed
        masks, counts, events, and sweep count alike."""
        seq = make_vortex_sequence(shape=(20, 20, 20), times=list(range(50, 71, 4)),
                                   seed=31)
        coords = np.argwhere(seq[0].mask("vortex"))
        seed = (0, *(int(c) for c in coords[len(coords) // 2]))

        def run():
            return FeatureTracker().track_streaming(seq, seed, lo=0.5, hi=10.0)

        a, b = run(), run()
        assert a.sweeps == b.sweeps
        assert a.voxel_counts == b.voxel_counts
        for i in range(len(a.times)):
            assert np.array_equal(a._packed[i], b._packed[i])
        assert a.events == b.events

    def test_oracle_session_reproducible(self):
        seq = make_cosmology_sequence(shape=(20, 20, 20), times=[310], n_blobs=30)

        def run():
            from repro.interface import InteractiveSession

            clf = DataSpaceClassifier(ShellFeatureExtractor(radius=2), seed=4)
            sess = InteractiveSession(seq.at_time(310), classifier=clf, idle_epochs=30)
            sess.run_with_oracle(Oracle("large", seed=11), rounds=2,
                                 strokes_per_round=6)
            return sess.preview_volume()

        assert np.array_equal(run(), run())


class TestScheduleIndependence:
    """Parallel execution must never change a voxel: worker count and
    chunksize are performance knobs, not semantics."""

    @staticmethod
    def _field(shape, seed):
        rng = np.random.default_rng(seed)
        return ndimage.uniform_filter(rng.random(shape), size=2) > 0.45

    def test_label_bricked_schedule_independent(self):
        mask = self._field((6, 14, 14, 14), 101)
        ref, ref_count = label_bricked(mask, connectivity=2,
                                       brick_shape=(1, 7, 7, 7))
        for workers, chunksize in [(2, 1), (2, 4), (4, 2)]:
            labels, count = label_bricked(
                mask, connectivity=2, brick_shape=(1, 7, 7, 7),
                workers=workers, backend="process", chunksize=chunksize,
            )
            assert count == ref_count
            assert np.array_equal(labels, ref)

    def test_grow_bricked_schedule_independent(self):
        mask = self._field((5, 12, 12, 12), 202)
        seed = tuple(int(c) for c in np.argwhere(mask)[0])
        ref = grow_bricked(mask, [seed], brick_shape=(1, 6, 6, 6))
        for workers, chunksize in [(2, 1), (3, 2)]:
            got = grow_bricked(mask, [seed], brick_shape=(1, 6, 6, 6),
                               workers=workers, backend="process",
                               chunksize=chunksize)
            assert np.array_equal(got, ref)

    def test_streaming_with_parallel_engine_matches_serial(self):
        seq = make_vortex_sequence(shape=(20, 20, 20),
                                   times=list(range(50, 71, 4)), seed=31)
        coords = np.argwhere(seq[0].mask("vortex"))
        seed = (0, *(int(c) for c in coords[len(coords) // 2]))
        serial = FeatureTracker().track_streaming(seq, seed, lo=0.5, hi=10.0)
        parallel = FeatureTracker(
            engine="bricked", brick_shape=(10, 10, 10), workers=2,
        ).track_streaming(seq, seed, lo=0.5, hi=10.0)
        assert parallel.voxel_counts == serial.voxel_counts
        assert np.array_equal(parallel.masks, serial.masks)
        assert parallel.events == serial.events
