"""Seeded region growing in 3D and 4D.

The paper extracts features as *"connected nodes that satisfy a certain
criteria"* where the criterion is an arbitrary classification function
(Sec. 2), and tracks them with *"4D region growing where the fourth
dimension is time"* (Sec. 5).  Correspondingly the API here takes the
criterion as an already-evaluated boolean mask — the caller brings a
transfer function, an adaptive IATF, or a neural-network classification;
the grower is agnostic.

Three backends:

- ``"scipy"`` — :func:`scipy.ndimage.binary_propagation`, the serial
  reference (iterated dilation, O(region diameter) array sweeps);
- ``"bricked"`` — :func:`repro.segmentation.fastgrow.grow_bricked`:
  label bricks independently, merge with union-find, select the seeded
  components — exact, one labeling pass instead of diameter-many
  sweeps, optionally brick-parallel;
- ``"frontier"`` — an in-repo vectorized breadth-first frontier expansion
  (pure numpy slicing, no wraparound), used as an independent
  cross-check in the test suite and as a fallback.

Both support face connectivity (``connectivity=1``) and full neighbourhoods
(``connectivity=ndim``), in any dimension — the 4D grower just calls the
same machinery on a ``[t, z, y, x]`` stack.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage


def _seeds_to_mask(seeds, shape) -> np.ndarray:
    """Normalize ``seeds`` (mask or list of index tuples) to a boolean mask."""
    if isinstance(seeds, np.ndarray) and seeds.dtype == bool:
        if seeds.shape != tuple(shape):
            raise ValueError(f"seed mask shape {seeds.shape} != criterion shape {shape}")
        return seeds
    mask = np.zeros(shape, dtype=bool)
    seeds = np.atleast_2d(np.asarray(seeds, dtype=np.int64))
    if seeds.size == 0:
        return mask
    if seeds.shape[1] != len(shape):
        raise ValueError(
            f"seed points must have {len(shape)} coordinates, got {seeds.shape[1]}"
        )
    for axis, n in enumerate(shape):
        coords = seeds[:, axis]
        if coords.min() < 0 or coords.max() >= n:
            raise IndexError(f"seed coordinate out of range along axis {axis}")
    mask[tuple(seeds.T)] = True
    return mask


def _structure(ndim: int, connectivity: int) -> np.ndarray:
    if not 1 <= connectivity <= ndim:
        raise ValueError(f"connectivity must be in [1, {ndim}], got {connectivity}")
    return ndimage.generate_binary_structure(ndim, connectivity)


def _grow_frontier(criterion: np.ndarray, seeds: np.ndarray, connectivity: int) -> np.ndarray:
    """Vectorized BFS: expand the frontier one shell per iteration.

    Face connectivity shifts the frontier ±1 along each axis via slicing
    (no wraparound); higher connectivity falls back to a per-iteration
    binary dilation with the matching structuring element.  Each iteration
    is O(volume) vectorized work; iteration count is the grown region's
    graph diameter.
    """
    ndim = criterion.ndim
    grown = seeds & criterion
    frontier = grown.copy()
    use_slicing = connectivity == 1
    structure = None if use_slicing else _structure(ndim, connectivity)
    while frontier.any():
        if use_slicing:
            neighbour = np.zeros_like(frontier)
            for axis in range(ndim):
                src_lo = [slice(None)] * ndim
                dst_lo = [slice(None)] * ndim
                src_lo[axis] = slice(1, None)
                dst_lo[axis] = slice(None, -1)
                # shift -1 along axis: frontier[i+1] reaches cell i
                neighbour[tuple(dst_lo)] |= frontier[tuple(src_lo)]
                # shift +1 along axis: frontier[i-1] reaches cell i
                neighbour[tuple(src_lo)] |= frontier[tuple(dst_lo)]
        else:
            neighbour = ndimage.binary_dilation(frontier, structure=structure)
        frontier = neighbour & criterion & ~grown
        grown |= frontier
    return grown


def grow_region(criterion, seeds, connectivity: int = 1, backend: str = "scipy") -> np.ndarray:
    """Grow from ``seeds`` through ``criterion`` (nD boolean mask).

    Parameters
    ----------
    criterion:
        Boolean array: voxels eligible for membership.  This is where the
        "arbitrary-dimensional classification function" plugs in — evaluate
        it first, pass the mask here.
    seeds:
        Boolean mask of the same shape, or an ``(n, ndim)`` array / single
        tuple of index coordinates.  Seeds outside the criterion are
        dropped (they simply fail the membership test).
    connectivity:
        1 = face neighbours (the paper's flood fill), up to ``ndim`` for
        full neighbourhoods.
    backend:
        ``"scipy"`` (default), ``"bricked"`` (label-and-select, see
        :mod:`repro.segmentation.fastgrow`), or ``"frontier"`` (in-repo
        BFS).

    Returns
    -------
    Boolean mask of the connected region(s) reachable from the seeds.
    """
    criterion = np.asarray(criterion, dtype=bool)
    seed_mask = _seeds_to_mask(seeds, criterion.shape)
    if backend == "frontier":
        return _grow_frontier(criterion, seed_mask, connectivity)
    if backend == "bricked":
        from repro.segmentation.fastgrow import grow_bricked

        return grow_bricked(criterion, seed_mask, connectivity=connectivity)
    if backend == "scipy":
        structure = _structure(criterion.ndim, connectivity)
        return ndimage.binary_propagation(
            seed_mask & criterion, mask=criterion, structure=structure
        )
    raise ValueError(
        f"unknown backend {backend!r}; expected 'scipy', 'bricked' or 'frontier'"
    )


def grow_4d(criteria, seeds, time_connect: bool = True, connectivity: int = 1,
            backend: str = "scipy") -> np.ndarray:
    """4D region growing over a time-stack of criterion masks (Sec. 5).

    Parameters
    ----------
    criteria:
        Sequence of 3D boolean masks (one per time step) or a 4D array
        ``[t, z, y, x]``.  For adaptive tracking each step's mask comes
        from that step's IATF-generated transfer function.
    seeds:
        Boolean 4D mask, or ``(n, 4)`` coordinates ``(t, z, y, x)``.
        Seeding only the first step and letting growth cross time is the
        paper's usage.
    time_connect:
        When True (default) the region may spread to the same voxel in
        adjacent steps — the temporal-overlap tracking assumption.  When
        False each step grows independently (degenerates to per-step 3D
        extraction, useful for ablation).

    Memory
    ------
    This function materializes the **entire** 4D stack: the criteria
    array plus the grown output are O(T · volume) resident at once, and
    the ``"scipy"`` backend's propagation allocates further full-stack
    scratch per sweep.  That is fine for the paper-scale experiments but
    not for long production runs — use
    :meth:`repro.core.tracking.FeatureTracker.track_streaming`, which
    consumes one timestep at a time and keeps peak memory independent of
    ``T`` while producing the identical tracked region.

    Returns
    -------
    4D boolean mask ``[t, z, y, x]`` of the tracked feature.
    """
    stack = np.asarray(criteria, dtype=bool)
    if stack.ndim != 4:
        raise ValueError(f"criteria must stack to 4D [t,z,y,x], got ndim={stack.ndim}")
    seed_mask = _seeds_to_mask(seeds, stack.shape)
    if time_connect:
        return grow_region(stack, seed_mask, connectivity=connectivity, backend=backend)
    out = np.zeros_like(stack)
    for t in range(stack.shape[0]):
        if seed_mask[t].any():
            out[t] = grow_region(
                stack[t], seed_mask[t], connectivity=connectivity, backend=backend
            )
    return out
