"""Shared utilities: RNG handling, validation, timing.

These helpers enforce the repository-wide conventions documented in
DESIGN.md section 5: every stochastic component takes an explicit seed or
:class:`numpy.random.Generator`, volumes are float32 arrays indexed
``[z, y, x]``, and hot-path timing uses monotonic wall clocks.
"""

from repro.utils.atomic import atomic_write_array, atomic_write_bytes, atomic_write_text
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.timing import Stopwatch, Timer, format_seconds
from repro.utils.validation import (
    check_finite,
    check_fraction,
    check_positive,
    check_probability,
    check_shape3d,
    check_volume_array,
)

__all__ = [
    "Stopwatch",
    "Timer",
    "as_generator",
    "atomic_write_array",
    "atomic_write_bytes",
    "atomic_write_text",
    "check_finite",
    "check_fraction",
    "check_positive",
    "check_probability",
    "check_shape3d",
    "check_volume_array",
    "format_seconds",
    "spawn_generators",
]
