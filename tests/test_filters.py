"""Tests for repro.volume.filters: the Fig. 7 blur baselines."""

import numpy as np
import pytest

from repro.volume import Volume, box_smooth, gaussian_smooth, iterated_smooth, median_smooth


def noisy_volume(seed=0, shape=(16, 16, 16)):
    rng = np.random.default_rng(seed)
    return rng.random(shape).astype(np.float32)


class TestBoxSmooth:
    def test_reduces_variance(self):
        data = noisy_volume()
        out = box_smooth(data, radius=1)
        assert out.var() < data.var()

    def test_preserves_mean_roughly(self):
        data = noisy_volume(1)
        out = box_smooth(data, radius=2)
        assert out.mean() == pytest.approx(data.mean(), abs=0.01)

    def test_radius_zero_is_copy(self):
        data = noisy_volume(2)
        out = box_smooth(data, radius=0)
        assert np.array_equal(out, data)
        assert out is not data

    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            box_smooth(noisy_volume(), radius=-1)

    def test_volume_wrapper_roundtrip(self):
        vol = Volume(noisy_volume(3), time=7, masks={"m": np.zeros((16, 16, 16), bool)})
        out = box_smooth(vol, radius=1)
        assert isinstance(out, Volume)
        assert out.time == 7
        assert "m" in out.masks

    def test_input_not_mutated(self):
        data = noisy_volume(4)
        before = data.copy()
        box_smooth(data, radius=1)
        assert np.array_equal(data, before)


class TestIteratedSmooth:
    def test_more_iterations_smoother(self):
        data = noisy_volume(5)
        v1 = iterated_smooth(data, radius=1, iterations=1).var()
        v5 = iterated_smooth(data, radius=1, iterations=5).var()
        assert v5 < v1

    def test_removes_small_blobs_and_detail(self):
        """The Fig. 7 failure mode: blur kills tiny features *and* large-
        feature detail together."""
        shape = (24, 24, 24)
        base = np.zeros(shape, dtype=np.float32)
        base[4:20, 4:20, 4:20] = 1.0  # large structure
        rng = np.random.default_rng(6)
        detail = rng.random(shape).astype(np.float32) * 0.3
        spot = np.zeros(shape, dtype=np.float32)
        spot[2, 2, 2] = 1.0  # tiny feature
        data = base + detail + spot
        out = iterated_smooth(data, radius=1, iterations=4)
        assert out[2, 2, 2] < 0.3  # tiny feature gone
        interior = out[8:16, 8:16, 8:16]
        assert interior.std() < detail[8:16, 8:16, 8:16].std() * 0.5  # detail gone too

    def test_zero_iterations_rejected(self):
        with pytest.raises(ValueError):
            iterated_smooth(noisy_volume(), iterations=0)


class TestGaussianSmooth:
    def test_reduces_variance(self):
        data = noisy_volume(7)
        assert gaussian_smooth(data, sigma=1.5).var() < data.var()

    def test_sigma_validated(self):
        with pytest.raises(ValueError):
            gaussian_smooth(noisy_volume(), sigma=0.0)

    def test_larger_sigma_smoother(self):
        data = noisy_volume(8)
        assert gaussian_smooth(data, 3.0).var() < gaussian_smooth(data, 1.0).var()


class TestMedianSmooth:
    def test_removes_salt_noise_keeps_edge(self):
        data = np.zeros((12, 12, 12), dtype=np.float32)
        data[:, :, 6:] = 1.0  # step edge
        data[3, 3, 2] = 1.0  # salt voxel
        out = median_smooth(data, radius=1)
        assert out[3, 3, 2] == 0.0
        assert out[6, 6, 8] == 1.0
        assert out[6, 6, 2] == 0.0

    def test_radius_zero_copy(self):
        data = noisy_volume(9)
        out = median_smooth(data, radius=0)
        assert np.array_equal(out, data)

    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            median_smooth(noisy_volume(), radius=-2)
