"""RGBA image buffer with PPM/PGM/PNG export.

Images are ``(height, width, 4)`` float32 arrays with premultiplied-alpha
semantics during compositing and straight RGB on export.  PPM (P6) needs no
external imaging library — results stay inspectable with any viewer while
the repository remains dependency-light.  PNG export uses only stdlib
``zlib``/``struct`` (8-bit RGB, filter 0) so CI can publish golden frames
that render inline in artifact viewers.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path

import numpy as np


def _png_chunk(tag: bytes, payload: bytes) -> bytes:
    crc = zlib.crc32(tag + payload) & 0xFFFFFFFF
    return struct.pack(">I", len(payload)) + tag + payload + struct.pack(">I", crc)


def encode_png_rgb(rgb8: np.ndarray) -> bytes:
    """Encode an ``(h, w, 3)`` uint8 array as a PNG byte string."""
    rgb8 = np.asarray(rgb8)
    if rgb8.ndim != 3 or rgb8.shape[2] != 3 or rgb8.dtype != np.uint8:
        raise ValueError(f"expected (h, w, 3) uint8 array, got "
                         f"{rgb8.shape} {rgb8.dtype}")
    height, width = rgb8.shape[:2]
    ihdr = struct.pack(">IIBBBBB", width, height, 8, 2, 0, 0, 0)
    # One filter byte (0 = None) prefixes every scanline.
    raw = np.empty((height, 1 + width * 3), dtype=np.uint8)
    raw[:, 0] = 0
    raw[:, 1:] = rgb8.reshape(height, width * 3)
    return b"".join([
        b"\x89PNG\r\n\x1a\n",
        _png_chunk(b"IHDR", ihdr),
        _png_chunk(b"IDAT", zlib.compress(raw.tobytes(), level=6)),
        _png_chunk(b"IEND", b""),
    ])


class Image:
    """A float32 RGBA raster.

    Parameters
    ----------
    height, width:
        Raster size in pixels.
    background:
        RGB background blended under the rendered result on export.
    """

    def __init__(self, height: int, width: int, background=(0.0, 0.0, 0.0)) -> None:
        if height <= 0 or width <= 0:
            raise ValueError(f"image size must be positive, got {height}x{width}")
        self.pixels = np.zeros((height, width, 4), dtype=np.float32)
        self.background = np.asarray(background, dtype=np.float32)
        if self.background.shape != (3,):
            raise ValueError("background must be an RGB triple")

    @classmethod
    def from_array(cls, rgba: np.ndarray, background=(0.0, 0.0, 0.0)) -> "Image":
        """Wrap an existing ``(h, w, 4)`` array (copied)."""
        rgba = np.asarray(rgba, dtype=np.float32)
        if rgba.ndim != 3 or rgba.shape[2] != 4:
            raise ValueError(f"expected (h, w, 4) array, got {rgba.shape}")
        img = cls(rgba.shape[0], rgba.shape[1], background=background)
        img.pixels[...] = rgba
        return img

    @property
    def shape(self) -> tuple[int, int]:
        """``(height, width)``."""
        return self.pixels.shape[:2]

    def composited(self) -> np.ndarray:
        """RGB with the background blended under the premultiplied pixels."""
        rgb = self.pixels[..., :3] + (1.0 - self.pixels[..., 3:4]) * self.background
        return np.clip(rgb, 0.0, 1.0)

    def coverage(self) -> float:
        """Fraction of pixels with any accumulated opacity — a cheap
        "did anything render" check used by tests and benches."""
        return float(np.count_nonzero(self.pixels[..., 3] > 1e-4)) / (
            self.pixels.shape[0] * self.pixels.shape[1]
        )

    def save_ppm(self, path) -> Path:
        """Write binary PPM (P6); returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        rgb8 = (self.composited() * 255.0 + 0.5).astype(np.uint8)
        header = f"P6\n{rgb8.shape[1]} {rgb8.shape[0]}\n255\n".encode("ascii")
        path.write_bytes(header + rgb8.tobytes())
        return path

    def png_bytes(self) -> bytes:
        """The 8-bit RGB PNG encoding of this image as a byte string.

        Exactly the bytes :meth:`save_png` writes — the serve daemon
        streams these over HTTP, and byte-comparing a served frame
        against a CLI-written file is how the differential tests prove
        the daemon renders identically.
        """
        rgb8 = (self.composited() * 255.0 + 0.5).astype(np.uint8)
        return encode_png_rgb(rgb8)

    def save_png(self, path) -> Path:
        """Write an 8-bit RGB PNG (stdlib-only encoder); returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(self.png_bytes())
        return path


def save_pgm(array2d: np.ndarray, path) -> Path:
    """Write a 2D float array (rescaled to its own range) as binary PGM."""
    array2d = np.asarray(array2d, dtype=np.float64)
    if array2d.ndim != 2:
        raise ValueError(f"expected 2D array, got ndim={array2d.ndim}")
    lo, hi = float(array2d.min()), float(array2d.max())
    norm = (array2d - lo) / (hi - lo) if hi > lo else np.zeros_like(array2d)
    gray8 = (norm * 255.0 + 0.5).astype(np.uint8)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = f"P5\n{gray8.shape[1]} {gray8.shape[0]}\n255\n".encode("ascii")
    path.write_bytes(header + gray8.tobytes())
    return path
