"""Exploration toolkit: levels of detail, perspective, guided painting.

Sec. 4.3 wants the scientist to *"see 4D flow field from different views
and at different levels of details, and interactively select the features
with the desired sizes"*; Sec. 6 adds click-selection of whole features.
This script walks that workflow headlessly on the cosmology data:

1. build a level-of-detail pyramid; navigate at a coarse level (fast),
   confirm the size intuition — large structures survive coarsening,
   tiny features vanish;
2. render fine/coarse levels from orthographic and perspective cameras;
3. train a quick classifier from a few strokes, ask the *system* where
   painting next would help most (uncertainty sampling), refine there;
4. click once on a structure to select the whole connected feature.

Run:  python examples/interactive_exploration.py
"""

from pathlib import Path

import numpy as np

from repro import (
    Camera,
    DataSpaceClassifier,
    ShellFeatureExtractor,
    TransferFunction1D,
    make_cosmology_sequence,
    render_volume,
)
from repro.interface.session import select_feature_at, suggest_paint_locations
from repro.metrics import classification_accuracy
from repro.utils.timing import Timer
from repro.volume.pyramid import VolumePyramid

OUT = Path(__file__).parent / "output" / "exploration"


def sample_mask(mask, n, rng):
    coords = np.argwhere(mask)
    sel = coords[rng.choice(len(coords), size=min(n, len(coords)), replace=False)]
    out = np.zeros(mask.shape, dtype=bool)
    out[tuple(sel.T)] = True
    return out


def main():
    sequence = make_cosmology_sequence(shape=(48, 48, 48), times=[310])
    vol = sequence.at_time(310)
    domain = vol.value_range
    tf = TransferFunction1D(domain).add_box(0.35 * domain[1], domain[1], 0.6)

    # --- 1. level-of-detail pyramid -------------------------------------
    pyramid = VolumePyramid(vol)
    print(f"Pyramid levels: {pyramid.shapes()}")
    lvl_large = pyramid.coarsest_level_with(vol.mask("large"))
    lvl_small = pyramid.coarsest_level_with(vol.mask("small"))
    print(f"Large structures survive to level {lvl_large}; "
          f"tiny features only to level {lvl_small} — size, made viewable.")

    # --- 2. navigation renders ------------------------------------------
    cam_o = Camera(azimuth=30, elevation=20, width=140, height=140)
    cam_p = Camera(azimuth=30, elevation=20, width=140, height=140,
                   projection="perspective", eye_distance=2.0)
    with Timer() as t_fine:
        render_volume(pyramid.level(0), tf, cam_o).save_ppm(OUT / "fine_ortho.ppm")
    with Timer() as t_coarse:
        render_volume(pyramid.level(2), tf, cam_o).save_ppm(OUT / "coarse_ortho.ppm")
    render_volume(pyramid.level(0), tf, cam_p).save_ppm(OUT / "fine_perspective.ppm")
    print(f"Fine render {t_fine.elapsed:.2f}s vs coarse level {t_coarse.elapsed:.2f}s "
          f"({t_fine.elapsed / max(t_coarse.elapsed, 1e-9):.1f}x faster navigation).")

    # --- 3. guided painting ----------------------------------------------
    rng = np.random.default_rng(0)
    clf = DataSpaceClassifier(ShellFeatureExtractor(radius=2), seed=5)
    large = vol.mask("large")
    clf.add_examples(vol, positive_mask=sample_mask(large, 40, rng),
                     negative_mask=sample_mask(~large, 40, rng))
    clf.train(epochs=150)
    acc0 = classification_accuracy(clf.classify(vol), large)

    suggestions = suggest_paint_locations(clf, vol, n=8, min_separation=5)
    print(f"\nSystem suggests painting at {len(suggestions)} ambiguous spots, e.g. "
          f"{[tuple(map(int, c)) for c in suggestions[:3]]}")
    # the oracle answers the suggestions with ground-truth labels
    pos = np.zeros(vol.shape, dtype=bool)
    neg = np.zeros(vol.shape, dtype=bool)
    for c in suggestions:
        (pos if large[tuple(c)] else neg)[tuple(c)] = True
    clf.add_examples(vol, positive_mask=pos if pos.any() else None,
                     negative_mask=neg if neg.any() else None)
    clf.train(epochs=150)
    acc1 = classification_accuracy(clf.classify(vol), large)
    print(f"Accuracy before guided strokes: {acc0:.3f}, after: {acc1:.3f}")

    # --- 4. click-to-select ----------------------------------------------
    cert = clf.classify(vol)
    inside = np.argwhere((cert > 0.5) & large)
    click = tuple(int(c) for c in inside[len(inside) // 2])
    selected = select_feature_at(clf, vol, click)
    print(f"\nOne click at {click} selected a connected feature of "
          f"{int(selected.sum())} voxels "
          f"({(selected & large).sum() / max(selected.sum(), 1):.0%} on the structure).")
    print(f"Renders written to {OUT}/")


if __name__ == "__main__":
    main()
